//! Empirical CDFs.
//!
//! Every accuracy figure in the paper (Figs. 4a–4c) is a CDF of per-flow
//! relative errors. [`Ecdf`] stores the sorted sample and answers quantile
//! and fraction-below queries; [`CdfSeries`] renders the exact step points
//! the experiment harness writes to CSV.

use serde::{Deserialize, Serialize};

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from samples; NaNs are rejected with a panic because they would
    /// poison ordering silently.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "Ecdf built with NaN sample"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs after check"));
        Ecdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (the CDF value at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in `[0, 1]` using the nearest-rank method;
    /// `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.sorted[rank - 1])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// Arithmetic mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Read-only access to the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Downsample to at most `max_points` evenly spaced CDF step points
    /// `(x, F(x))`, always keeping the first and last sample. This is what
    /// the figure CSVs contain.
    pub fn series(&self, max_points: usize) -> CdfSeries {
        let n = self.sorted.len();
        let mut points = Vec::new();
        if n == 0 || max_points == 0 {
            return CdfSeries { points };
        }
        let step = (n.max(2) - 1) as f64 / (max_points.min(n).max(2) - 1) as f64;
        let mut last_idx = usize::MAX;
        for i in 0..max_points.min(n) {
            let idx = ((i as f64 * step).round() as usize).min(n - 1);
            if idx == last_idx {
                continue;
            }
            last_idx = idx;
            points.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
        }
        CdfSeries { points }
    }
}

/// A downsampled CDF as `(value, cumulative_fraction)` step points.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CdfSeries {
    /// Step points, ascending in both coordinates.
    pub points: Vec<(f64, f64)>,
}

impl CdfSeries {
    /// Render as CSV lines `value,fraction` (no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (x, f) in &self.points {
            out.push_str(&format!("{x},{f}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.mean(), None);
        assert!(e.series(10).points.is_empty());
    }

    #[test]
    fn fraction_at_or_below_steps() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.fraction_at_or_below(0.5), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.999), 0.5);
        assert_eq!(e.fraction_at_or_below(4.0), 1.0);
        assert_eq!(e.fraction_at_or_below(99.0), 1.0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let e = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.median(), Some(30.0));
        assert_eq!(e.quantile(0.2), Some(10.0));
        assert_eq!(e.quantile(0.21), Some(20.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
        assert_eq!(e.min(), Some(10.0));
        assert_eq!(e.max(), Some(50.0));
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.samples(), &[1.0, 2.0, 3.0]);
        assert!((e.mean().unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        Ecdf::new(vec![1.0, f64::NAN]);
    }

    #[test]
    fn series_monotone_and_bounded() {
        let samples: Vec<f64> = (0..1000).map(|i| (i as f64 * 7.3) % 100.0).collect();
        let e = Ecdf::new(samples);
        let s = e.series(50);
        assert!(s.points.len() <= 50);
        for w in s.points.windows(2) {
            assert!(w[1].0 >= w[0].0, "x not monotone");
            assert!(w[1].1 >= w[0].1, "F not monotone");
        }
        assert_eq!(s.points.last().unwrap().1, 1.0);
    }

    #[test]
    fn series_keeps_all_points_when_small() {
        let e = Ecdf::new(vec![1.0, 2.0]);
        let s = e.series(10);
        assert_eq!(s.points, vec![(1.0, 0.5), (2.0, 1.0)]);
    }

    #[test]
    fn csv_rendering() {
        let e = Ecdf::new(vec![1.0, 2.0]);
        let csv = e.series(10).to_csv();
        assert_eq!(csv, "1,0.5\n2,1\n");
    }
}
