//! Error metrics.
//!
//! The paper's accuracy metric is the *relative error* of a per-flow estimate
//! against the true value computed from simulator ground truth. These helpers
//! centralise the conventions (absolute value, zero-truth handling) so every
//! experiment and test measures the same thing.

/// Relative error `|estimate - truth| / truth`.
///
/// When the true value is zero (possible for, e.g., the standard deviation of
/// a flow whose packets all saw identical delay): returns `0.0` if the
/// estimate is also (near) zero, `+inf` otherwise — an estimator that invents
/// variance where there is none is maximally wrong.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    debug_assert!(
        !estimate.is_nan() && !truth.is_nan(),
        "NaN in relative_error"
    );
    if truth == 0.0 {
        if estimate.abs() < 1e-12 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth.abs()
    }
}

/// Signed relative error `(estimate - truth) / truth` (positive =
/// overestimate). Same zero-truth conventions as [`relative_error`].
pub fn signed_relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate.abs() < 1e-12 {
            0.0
        } else if estimate > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (estimate - truth) / truth.abs()
    }
}

/// Absolute error `|estimate - truth|`.
pub fn absolute_error(estimate: f64, truth: f64) -> f64 {
    (estimate - truth).abs()
}

/// Summary of an error distribution, as quoted in the paper's prose
/// ("median relative error of 4.5%", "70% of flows have less than 10%
/// relative errors").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Number of error samples.
    pub count: usize,
    /// Median error.
    pub median: f64,
    /// Mean error.
    pub mean: f64,
    /// 90th percentile error.
    pub p90: f64,
    /// 99th percentile error.
    pub p99: f64,
    /// Fraction of samples with error below 0.10 (the paper's "<10%" cut).
    pub frac_below_10pct: f64,
}

impl ErrorSummary {
    /// Summarise a set of error samples. Returns `None` if empty.
    pub fn from_samples(samples: &[f64]) -> Option<ErrorSummary> {
        if samples.is_empty() {
            return None;
        }
        let e = crate::cdf::Ecdf::new(samples.to_vec());
        Some(ErrorSummary {
            count: e.len(),
            median: e.median().expect("non-empty"),
            mean: e.mean().expect("non-empty"),
            p90: e.quantile(0.9).expect("non-empty"),
            p99: e.quantile(0.99).expect("non-empty"),
            frac_below_10pct: e.fraction_at_or_below(0.10),
        })
    }
}

impl core::fmt::Display for ErrorSummary {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} median={:.2}% mean={:.2}% p90={:.2}% p99={:.2}% <10%err: {:.1}% of flows",
            self.count,
            self.median * 100.0,
            self.mean * 100.0,
            self.p90 * 100.0,
            self.p99 * 100.0,
            self.frac_below_10pct * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
        assert_eq!(relative_error(3.0, -2.0), 2.5);
    }

    #[test]
    fn zero_truth_conventions() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1e-15, 0.0), 0.0);
        assert_eq!(relative_error(0.5, 0.0), f64::INFINITY);
        assert_eq!(signed_relative_error(0.5, 0.0), f64::INFINITY);
        assert_eq!(signed_relative_error(-0.5, 0.0), f64::NEG_INFINITY);
        assert_eq!(signed_relative_error(0.0, 0.0), 0.0);
    }

    #[test]
    fn signed_error_keeps_direction() {
        assert_eq!(signed_relative_error(110.0, 100.0), 0.1);
        assert!((signed_relative_error(90.0, 100.0) - -0.1).abs() < 1e-12);
    }

    #[test]
    fn absolute_error_basics() {
        assert_eq!(absolute_error(3.0, 5.0), 2.0);
        assert_eq!(absolute_error(5.0, 3.0), 2.0);
    }

    #[test]
    fn summary_of_uniform_errors() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        let s = ErrorSummary::from_samples(&samples).unwrap();
        assert_eq!(s.count, 100);
        assert!((s.median - 0.50).abs() < 0.011);
        assert!((s.p90 - 0.90).abs() < 0.011);
        assert!((s.frac_below_10pct - 0.10).abs() < 1e-9);
        assert!(ErrorSummary::from_samples(&[]).is_none());
    }

    #[test]
    fn summary_display_mentions_median() {
        let s = ErrorSummary::from_samples(&[0.045; 10]).unwrap();
        let text = s.to_string();
        assert!(text.contains("median=4.50%"), "got: {text}");
    }
}
