//! Single-pass moment accumulation.
//!
//! Per-flow latency statistics (the paper reports per-flow *mean* and
//! *standard deviation* estimates, Figs. 4a/4b) are accumulated with
//! Welford's online algorithm: numerically stable, O(1) memory per flow, and
//! mergeable so parallel experiment shards can combine partial results.

use serde::{Deserialize, Serialize};

/// Online mean/variance/min/max accumulator (Welford).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StreamingStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingStats {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        StreamingStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` with no observations.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (divide by n), or `None` with no observations.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| (self.m2 / self.count as f64).max(0.0))
    }

    /// Sample variance (divide by n-1), or `None` with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| (self.m2 / (self.count - 1) as f64).max(0.0))
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Smallest observation.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }

    /// Merge another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_yields_none() {
        let s = StreamingStats::new();
        assert_eq!(s.count(), 0);
        assert!(s.mean().is_none());
        assert!(s.variance().is_none());
        assert!(s.std_dev().is_none());
        assert!(s.min().is_none());
        assert!(s.max().is_none());
    }

    #[test]
    fn single_observation() {
        let mut s = StreamingStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), Some(42.0));
        assert_eq!(s.variance(), Some(0.0));
        assert!(s.sample_variance().is_none());
        assert_eq!(s.min(), Some(42.0));
        assert_eq!(s.max(), Some(42.0));
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 113) as f64 * 0.5).collect();
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let (mean, var) = naive(&xs);
        assert!((s.mean().unwrap() - mean).abs() < 1e-9);
        assert!((s.variance().unwrap() - var).abs() < 1e-9);
        assert_eq!(s.count(), 1000);
        assert!((s.sum() - xs.iter().sum::<f64>()).abs() < 1e-6);
    }

    #[test]
    fn numerically_stable_with_large_offset() {
        // Classic catastrophic-cancellation scenario for naive sum-of-squares.
        let offset = 1e9;
        let xs: Vec<f64> = (0..100).map(|i| offset + (i % 7) as f64).collect();
        let mut s = StreamingStats::new();
        for &x in &xs {
            s.push(x);
        }
        let (_, var) = naive(&xs);
        assert!((s.variance().unwrap() - var).abs() / var < 1e-6);
    }

    #[test]
    fn sample_variance_uses_n_minus_1() {
        let mut s = StreamingStats::new();
        for x in [1.0, 2.0, 3.0] {
            s.push(x);
        }
        assert!((s.variance().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.sample_variance().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..137] {
            a.push(x);
        }
        for &x in &xs[137..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-9);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = StreamingStats::new();
        s.push(5.0);
        s.push(7.0);
        let snapshot = s;
        s.merge(&StreamingStats::new());
        assert_eq!(s.count(), snapshot.count());
        assert_eq!(s.mean(), snapshot.mean());

        let mut e = StreamingStats::new();
        e.merge(&snapshot);
        assert_eq!(e.count(), 2);
        assert_eq!(e.mean(), snapshot.mean());
    }
}
