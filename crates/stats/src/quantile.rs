//! Streaming quantile estimation (the P² algorithm).
//!
//! The original RLI work estimates not only per-flow means and standard
//! deviations but also tail quantiles; storing every per-packet delay per
//! flow is exactly what switch implementations cannot afford. The P²
//! algorithm (Jain & Chlamtac, CACM 1985) tracks one quantile with five
//! markers in O(1) memory and O(1) per observation — the right shape for a
//! per-flow accumulator.

use serde::{Deserialize, Serialize};

/// Streaming estimator of a single quantile using the P² algorithm.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct P2Quantile {
    p: f64,
    // Marker heights (estimates of the quantile positions).
    q: [f64; 5],
    // Marker positions (1-based observation ranks).
    n: [f64; 5],
    // Desired marker positions.
    np: [f64; 5],
    // Desired position increments per observation.
    dn: [f64; 5],
    count: u64,
}

impl P2Quantile {
    /// Track the `p`-quantile, `p` in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Convenience: median tracker.
    pub fn median() -> Self {
        Self::new(0.5)
    }

    /// Convenience: 99th-percentile tracker.
    pub fn p99() -> Self {
        Self::new(0.99)
    }

    /// The tracked quantile parameter.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(!x.is_nan(), "NaN observation");
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                self.q.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
            }
            return;
        }
        self.count += 1;

        // Find the cell k such that q[k] <= x < q[k+1], adjusting extremes.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if self.q[i] <= x && x < self.q[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };

        // Increment positions of markers above the cell.
        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three middle markers if they are off their desired
        // positions by at least one.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (qm, qi, qp) = (self.q[i - 1], self.q[i], self.q[i + 1]);
        let (nm, ni, np) = (self.n[i - 1], self.n[i], self.n[i + 1]);
        qi + d / (np - nm)
            * ((ni - nm + d) * (qp - qi) / (np - ni) + (np - ni - d) * (qi - qm) / (ni - nm))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current quantile estimate (`None` before any observation). With
    /// fewer than five observations, falls back to the exact order
    /// statistic of the buffered values.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count < 5 {
            let mut v: Vec<f64> = self.q[..self.count as usize].to_vec();
            v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
            let rank = ((self.p * self.count as f64).ceil() as usize).clamp(1, v.len());
            return Some(v[rank - 1]);
        }
        Some(self.q[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_quantile(mut xs: Vec<f64>, p: f64) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((p * xs.len() as f64).ceil() as usize).clamp(1, xs.len());
        xs[rank - 1]
    }

    #[test]
    fn empty_and_small_inputs() {
        let mut q = P2Quantile::median();
        assert_eq!(q.estimate(), None);
        q.push(10.0);
        assert_eq!(q.estimate(), Some(10.0));
        q.push(20.0);
        assert_eq!(q.estimate(), Some(10.0)); // nearest-rank median of 2
        q.push(30.0);
        assert_eq!(q.estimate(), Some(20.0));
        assert_eq!(q.count(), 3);
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut q = P2Quantile::median();
        let mut rng = StdRng::seed_from_u64(1);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.random::<f64>()).collect();
        for &x in &xs {
            q.push(x);
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.5).abs() < 0.01, "median estimate {est}");
    }

    #[test]
    fn p99_of_exponential_converges() {
        // Exponential(1): p99 = ln(100) ≈ 4.605.
        let mut q = P2Quantile::p99();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200_000 {
            let u: f64 = 1.0 - rng.random::<f64>();
            q.push(-u.ln());
        }
        let est = q.estimate().unwrap();
        let truth = 100.0f64.ln();
        assert!(
            (est - truth).abs() / truth < 0.05,
            "p99 estimate {est} vs {truth}"
        );
    }

    #[test]
    fn tracks_exact_quantile_on_skewed_data() {
        // Log-normal-ish: squares of normals via sum of uniforms.
        let mut rng = StdRng::seed_from_u64(3);
        let xs: Vec<f64> = (0..100_000)
            .map(|_| {
                let s: f64 = (0..12).map(|_| rng.random::<f64>()).sum::<f64>() - 6.0;
                (s * 0.8).exp()
            })
            .collect();
        for p in [0.25, 0.5, 0.9] {
            let mut q = P2Quantile::new(p);
            for &x in &xs {
                q.push(x);
            }
            let est = q.estimate().unwrap();
            let truth = exact_quantile(xs.clone(), p);
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.05, "p={p}: {est} vs {truth} (rel {rel})");
        }
    }

    #[test]
    fn monotone_input_is_fine() {
        let mut q = P2Quantile::new(0.9);
        for i in 0..10_000 {
            q.push(i as f64);
        }
        let est = q.estimate().unwrap();
        assert!((est - 9000.0).abs() < 200.0, "p90 of 0..10000: {est}");
    }

    #[test]
    fn constant_input() {
        let mut q = P2Quantile::median();
        for _ in 0..1000 {
            q.push(7.5);
        }
        assert_eq!(q.estimate(), Some(7.5));
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn rejects_invalid_p() {
        P2Quantile::new(1.0);
    }

    #[test]
    fn estimate_between_extremes() {
        let mut q = P2Quantile::median();
        let mut rng = StdRng::seed_from_u64(4);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..5000 {
            let x = rng.random::<f64>() * 100.0 - 50.0;
            lo = lo.min(x);
            hi = hi.max(x);
            q.push(x);
        }
        let est = q.estimate().unwrap();
        assert!(est >= lo && est <= hi);
    }
}
