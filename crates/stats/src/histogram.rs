//! Logarithmic histograms.
//!
//! Latency and relative-error distributions span several orders of magnitude
//! (the paper plots error CDFs on a log axis from 10⁻³ to 10¹). A
//! [`LogHistogram`] buckets values geometrically so a single compact
//! structure covers the full dynamic range; it backs quick-look summaries and
//! the text-mode distribution sketches printed by the experiment harness.

use serde::{Deserialize, Serialize};

/// A histogram with geometrically spaced buckets between `min` and `max`
/// (values outside are clamped into the edge buckets).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    min: f64,
    max: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Create with `buckets` geometric buckets spanning `[min, max)`.
    /// `min` and `max` must be positive with `min < max`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(min > 0.0 && max > min, "need 0 < min < max");
        assert!(buckets > 0, "need at least one bucket");
        LogHistogram {
            min,
            max,
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Standard histogram for relative errors: 60 buckets over [1e-4, 1e2).
    pub fn for_relative_error() -> Self {
        Self::new(1e-4, 1e2, 60)
    }

    /// Standard histogram for latencies in nanoseconds: [100ns, 10ms).
    pub fn for_latency_ns() -> Self {
        Self::new(1e2, 1e7, 50)
    }

    fn bucket_of(&self, x: f64) -> Option<usize> {
        if x < self.min {
            return None;
        }
        let frac = (x / self.min).ln() / (self.max / self.min).ln();
        let idx = (frac * self.counts.len() as f64).floor() as isize;
        if idx < 0 {
            None
        } else if idx as usize >= self.counts.len() {
            Some(self.counts.len()) // sentinel: overflow
        } else {
            Some(idx as usize)
        }
    }

    /// Record a value. Non-finite values are counted as overflow (+inf) or
    /// underflow (anything below `min`, including non-positives).
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x.is_nan() {
            self.overflow += 1;
            return;
        }
        match self.bucket_of(x) {
            None => self.underflow += 1,
            Some(i) if i == self.counts.len() => self.overflow += 1,
            Some(i) => self.counts[i] += 1,
        }
    }

    /// Total values recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Values below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Values at or above the histogram's upper bound (and NaNs).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_lower(&self, i: usize) -> f64 {
        let ratio = self.max / self.min;
        self.min * ratio.powf(i as f64 / self.counts.len() as f64)
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Approximate quantile from bucket boundaries (returns the lower edge of
    /// the bucket containing the q-th value). `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(0.0);
        }
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.bucket_lower(i));
            }
        }
        Some(self.max)
    }

    /// A compact ASCII sketch (one row per non-empty bucket), for the
    /// harness's terminal output.
    pub fn sketch(&self, width: usize) -> String {
        let max_count = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        if self.underflow > 0 {
            out.push_str(&format!("{:>12} {:>8}\n", "<min", self.underflow));
        }
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let bar = "#".repeat(((c as f64 / max_count as f64) * width as f64).ceil() as usize);
            out.push_str(&format!(
                "{:>12.4e} {:>8} {}\n",
                self.bucket_lower(i),
                c,
                bar
            ));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>12} {:>8}\n", ">=max", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_expected_buckets() {
        let mut h = LogHistogram::new(1.0, 100.0, 2); // buckets [1,10) and [10,100)
        h.record(1.0);
        h.record(5.0);
        h.record(9.999);
        h.record(10.0);
        h.record(99.0);
        assert_eq!(h.counts(), &[3, 2]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn out_of_range_counted_separately() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        h.record(0.5);
        h.record(0.0);
        h.record(-3.0);
        h.record(100.0);
        h.record(f64::INFINITY);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 3);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn bucket_lower_edges_are_geometric() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        assert!((h.bucket_lower(0) - 1.0).abs() < 1e-9);
        assert!((h.bucket_lower(1) - 10.0).abs() < 1e-9);
        assert!((h.bucket_lower(2) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_approximation() {
        let mut h = LogHistogram::new(1e-3, 1e1, 40);
        for i in 1..=1000 {
            h.record(i as f64 / 1000.0); // uniform (0,1]
        }
        let med = h.quantile(0.5).unwrap();
        assert!((0.3..=0.7).contains(&med), "median approx {med}");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
        assert!(LogHistogram::for_relative_error().quantile(0.5).is_none());
    }

    #[test]
    fn sketch_contains_bars() {
        let mut h = LogHistogram::new(1.0, 100.0, 2);
        for _ in 0..5 {
            h.record(2.0);
        }
        h.record(50.0);
        let s = h.sketch(10);
        assert!(s.contains('#'));
        assert!(s.lines().count() == 2, "{s}");
    }

    #[test]
    fn presets_cover_paper_ranges() {
        let mut h = LogHistogram::for_relative_error();
        h.record(0.001); // 10^-3 — left edge of Fig 4's x-axis
        h.record(10.0); // 10^1 — right edge
        assert_eq!(h.underflow() + h.overflow(), 0);
        let mut h = LogHistogram::for_latency_ns();
        h.record(3_000.0); // 3 µs — paper's 67%-utilization mean latency
        h.record(83_000.0); // 83 µs — 93%-utilization mean latency
        assert_eq!(h.underflow() + h.overflow(), 0);
    }
}
