//! Exponentially weighted moving averages.
//!
//! RLI's adaptive injection policy drives its rate from "an estimated link
//! utilization at the interface" (§1). The sender estimates utilization with
//! an EWMA over fixed windows of observed bytes — the same structure the
//! original RLI paper uses — implemented here as a small reusable component.

use serde::{Deserialize, Serialize};

/// A plain EWMA over scalar observations: `v ← α·x + (1-α)·v`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Create with smoothing factor `alpha` in `(0, 1]`. Higher = more
    /// reactive.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1]");
        Ewma { alpha, value: None }
    }

    /// Fold in an observation and return the updated average.
    pub fn update(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        };
        self.value = Some(v);
        v
    }

    /// Current average (`None` before the first observation).
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Reset to the no-observation state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Windowed link-utilization estimator: accumulates bytes sent in fixed
/// nanosecond windows, converts each full window into a utilization fraction
/// of the configured link rate, and smooths across windows with an EWMA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationEstimator {
    link_rate_bps: u64,
    window_ns: u64,
    ewma: Ewma,
    window_start_ns: u64,
    bytes_in_window: u64,
}

impl UtilizationEstimator {
    /// Build for a link of `link_rate_bps`, integrating over `window_ns`
    /// windows with smoothing factor `alpha`.
    pub fn new(link_rate_bps: u64, window_ns: u64, alpha: f64) -> Self {
        assert!(link_rate_bps > 0, "link rate must be positive");
        assert!(window_ns > 0, "window must be positive");
        UtilizationEstimator {
            link_rate_bps,
            window_ns,
            ewma: Ewma::new(alpha),
            window_start_ns: 0,
            bytes_in_window: 0,
        }
    }

    /// Record `bytes` observed at time `now_ns`. Closes any windows that have
    /// elapsed (empty windows count as zero utilization).
    pub fn record(&mut self, now_ns: u64, bytes: u32) {
        self.roll_to(now_ns);
        self.bytes_in_window += bytes as u64;
    }

    /// Advance the window clock to `now_ns` without recording traffic.
    pub fn roll_to(&mut self, now_ns: u64) {
        while now_ns >= self.window_start_ns + self.window_ns {
            let util = self.window_utilization();
            self.ewma.update(util);
            self.window_start_ns += self.window_ns;
            self.bytes_in_window = 0;
        }
    }

    fn window_utilization(&self) -> f64 {
        let capacity_bytes = self.link_rate_bps as f64 / 8.0 * (self.window_ns as f64 / 1e9);
        (self.bytes_in_window as f64 / capacity_bytes).min(1.0)
    }

    /// The smoothed utilization estimate in `[0, 1]`; falls back to the
    /// in-progress window if no window has completed yet.
    pub fn utilization(&self) -> f64 {
        self.ewma
            .value()
            .unwrap_or_else(|| self.window_utilization())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_first_value_is_observation() {
        let mut e = Ewma::new(0.5);
        assert_eq!(e.value(), None);
        assert_eq!(e.update(10.0), 10.0);
        assert_eq!(e.update(0.0), 5.0);
        assert_eq!(e.update(5.0), 5.0);
        e.reset();
        assert_eq!(e.value(), None);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        Ewma::new(0.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(0.93);
        }
        assert!((e.value().unwrap() - 0.93).abs() < 1e-6);
    }

    #[test]
    fn utilization_full_link() {
        // 1 Gb/s link, 1 ms windows → capacity 125_000 bytes per window.
        let mut u = UtilizationEstimator::new(1_000_000_000, 1_000_000, 1.0);
        u.record(0, 125_000);
        u.roll_to(1_000_001);
        assert!((u.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_half_link_smoothed() {
        let mut u = UtilizationEstimator::new(1_000_000_000, 1_000_000, 0.5);
        for w in 0..50u64 {
            u.record(w * 1_000_000, 62_500); // 50% each window
        }
        // Close exactly the 50 recorded windows — rolling further would
        // append empty (0%) windows and drag the EWMA down.
        u.roll_to(50_000_000);
        assert!((u.utilization() - 0.5).abs() < 1e-6, "{}", u.utilization());
    }

    #[test]
    fn idle_windows_decay_estimate() {
        let mut u = UtilizationEstimator::new(1_000_000_000, 1_000_000, 0.5);
        u.record(0, 125_000); // one full window
        u.roll_to(1_000_000); // closes it at 1.0
        u.roll_to(10_000_000); // 9 idle windows
        assert!(u.utilization() < 0.01, "{}", u.utilization());
    }

    #[test]
    fn utilization_clamped_at_one() {
        let mut u = UtilizationEstimator::new(1_000_000_000, 1_000_000, 1.0);
        u.record(0, 10_000_000); // way over capacity
        u.roll_to(1_000_000);
        assert_eq!(u.utilization(), 1.0);
    }

    #[test]
    fn in_progress_window_used_before_first_close() {
        let mut u = UtilizationEstimator::new(1_000_000_000, 1_000_000, 0.3);
        u.record(10, 62_500);
        // No window has closed; utilization should reflect the partial window.
        assert!((u.utilization() - 0.5).abs() < 1e-9);
    }
}
