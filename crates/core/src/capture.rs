//! Two-point capture taps: per-flow latency by packet identity.
//!
//! The production idiom RLI is evaluated against in deployment (and the
//! one the related latency-measurement tooling uses): put a capture
//! point at two places in the fabric, record a timestamp for every packet
//! each point sees, and report latency as the timestamp delta of the
//! *same packet* at both points — RFC 1242's definition — matching
//! packets on their wire-visible identity (the 5-tuple plus the 16-bit
//! IPv4 identification field; no simulator-internal state).
//!
//! [`CapturePair`] implements that as a [`HopSink`]: point A stamps,
//! point B matches and accumulates per-flow latency. Because the match
//! key is exactly what `rlir_trace::pcap::write_pcap` emits on the wire
//! (`packet.id & 0xFFFF` as the IP ident), the pair measures what two
//! real taps running tcpdump at those fabric points would measure — an
//! **external** ground truth for the RLI estimate, unlike the
//! simulator-internal truth spans scenarios used before. On a tandem
//! where A is the injection point and B the delivery point, the pair's
//! per-packet deltas must coincide exactly with the engine's
//! `true_delay()`; `tests/trace_replay.rs` pins that.
//!
//! Memory is bounded: pending A-stamps are evicted once the engine
//! watermark passes `stamp + timeout` (packets that died between the
//! points, or identities that never reach B), so the pair holds
//! O(in-flight between A and B), not O(run).

use crate::plane::TapPoint;
use rlir_net::fxhash::FxHashMap;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_sim::{HopEvent, HopKind, HopSink};
use std::collections::VecDeque;

/// Wire-visible packet identity: 5-tuple + IPv4 ident. Everything a real
/// capture point can key on from the headers alone.
type CaptureKey = (FlowKey, u16);

fn observes(point: TapPoint, ev: &HopEvent<'_>) -> bool {
    match point {
        TapPoint::NodeArrival(n) => ev.node == n && matches!(ev.kind, HopKind::Arrive),
        TapPoint::PortDeparture(n, p) => {
            ev.node == n && matches!(ev.kind, HopKind::Dequeue { port, .. } if port == p)
        }
        TapPoint::Delivery(n) => ev.node == n && matches!(ev.kind, HopKind::Deliver),
    }
}

/// Per-flow latency accumulated from identity matches.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FlowCapture {
    /// Packets matched at both points.
    pub count: u64,
    /// Sum of per-packet deltas in nanoseconds.
    pub sum_ns: u64,
    /// Smallest delta seen.
    pub min_ns: u64,
    /// Largest delta seen.
    pub max_ns: u64,
}

impl FlowCapture {
    /// Mean latency between the capture points in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }
}

/// Counters and per-flow results of a finished capture pair.
#[derive(Debug, Clone)]
pub struct CaptureReport {
    /// Packets matched at both points (the sample count).
    pub matched: u64,
    /// Point-B sightings with no pending point-A stamp (either A never
    /// saw the identity, or its stamp already expired).
    pub unmatched_b: u64,
    /// Point-A sightings whose identity was already pending — 16-bit
    /// ident reuse inside one A→B flight window; the newer stamp wins and
    /// the older is discarded, as a real matcher would.
    pub ambiguous: u64,
    /// Pending stamps evicted by the timeout (packets presumed lost
    /// between the points).
    pub expired: u64,
    /// Stamps still pending when the run ended.
    pub residual: u64,
    /// High-water mark of the pending table — the pair's memory bound.
    pub peak_pending: usize,
    /// Per-flow latency, sorted by flow key for deterministic output.
    pub flows: Vec<(FlowKey, FlowCapture)>,
}

impl CaptureReport {
    /// Mean latency over every matched packet, in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        let (count, sum) = self
            .flows
            .iter()
            .fold((0u64, 0u64), |(c, s), (_, f)| (c + f.count, s + f.sum_ns));
        if count == 0 {
            0.0
        } else {
            sum as f64 / count as f64
        }
    }

    /// Look up one flow's capture.
    pub fn flow(&self, key: &FlowKey) -> Option<&FlowCapture> {
        self.flows
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.flows[i].1)
    }
}

/// A pair of identity-matching capture points on the hop-event stream
/// (see the module docs). Attach as the engine sink — or tee it next to a
/// measurement plane with `rlir_sim::TeeSink` — then call
/// [`finish`](Self::finish).
#[derive(Debug)]
pub struct CapturePair {
    a: TapPoint,
    b: TapPoint,
    timeout_ns: u64,
    pending: FxHashMap<CaptureKey, u64>,
    /// Stamp order for timeout eviction: `(stamp_ns, key)` in point-A
    /// observation order (approximately time-ordered; eviction only needs
    /// the watermark bound, not exactness).
    fifo: VecDeque<(u64, CaptureKey)>,
    flows: FxHashMap<FlowKey, FlowCapture>,
    matched: u64,
    unmatched_b: u64,
    ambiguous: u64,
    expired: u64,
    peak_pending: usize,
}

/// Default pending-stamp timeout: far beyond any sane A→B transit, small
/// enough to keep the pending table bounded by the in-flight window.
pub const DEFAULT_CAPTURE_TIMEOUT: SimDuration = SimDuration::from_millis(50);

impl CapturePair {
    /// Capture at `a`, match at `b`, with the default timeout.
    pub fn new(a: TapPoint, b: TapPoint) -> Self {
        Self::with_timeout(a, b, DEFAULT_CAPTURE_TIMEOUT)
    }

    /// Capture with an explicit pending-stamp timeout.
    pub fn with_timeout(a: TapPoint, b: TapPoint, timeout: SimDuration) -> Self {
        CapturePair {
            a,
            b,
            timeout_ns: timeout.as_nanos(),
            pending: FxHashMap::default(),
            fifo: VecDeque::new(),
            flows: FxHashMap::default(),
            matched: 0,
            unmatched_b: 0,
            ambiguous: 0,
            expired: 0,
            peak_pending: 0,
        }
    }

    fn key(ev: &HopEvent<'_>) -> CaptureKey {
        (ev.packet.flow, (ev.packet.id.0 & 0xFFFF) as u16)
    }

    fn record(&mut self, flow: FlowKey, delta_ns: u64) {
        let f = self.flows.entry(flow).or_default();
        if f.count == 0 {
            f.min_ns = delta_ns;
            f.max_ns = delta_ns;
        } else {
            f.min_ns = f.min_ns.min(delta_ns);
            f.max_ns = f.max_ns.max(delta_ns);
        }
        f.count += 1;
        f.sum_ns += delta_ns;
    }

    /// Finish: fold residual pending stamps into the counters and emit
    /// the per-flow table (sorted for deterministic output).
    pub fn finish(self) -> CaptureReport {
        let mut flows: Vec<(FlowKey, FlowCapture)> = self.flows.into_iter().collect();
        flows.sort_by_key(|(k, _)| *k);
        CaptureReport {
            matched: self.matched,
            unmatched_b: self.unmatched_b,
            ambiguous: self.ambiguous,
            expired: self.expired,
            residual: self.pending.len() as u64,
            peak_pending: self.peak_pending,
            flows,
        }
    }
}

impl HopSink for CapturePair {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        // A first: if one event is both points (a == b), the stamp lands
        // and immediately matches at zero delta on the next sighting —
        // not this one.
        if observes(self.a, ev) {
            let key = Self::key(ev);
            if self.pending.insert(key, ev.at.as_nanos()).is_some() {
                self.ambiguous += 1;
            }
            self.fifo.push_back((ev.at.as_nanos(), key));
            self.peak_pending = self.peak_pending.max(self.pending.len());
        } else if observes(self.b, ev) {
            let key = Self::key(ev);
            match self.pending.remove(&key) {
                Some(t_a) => {
                    self.matched += 1;
                    self.record(key.0, ev.at.as_nanos().saturating_sub(t_a));
                }
                None => self.unmatched_b += 1,
            }
        }
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        let horizon = watermark.as_nanos().saturating_sub(self.timeout_ns);
        while let Some(&(stamp, key)) = self.fifo.front() {
            if stamp >= horizon {
                break;
            }
            self.fifo.pop_front();
            // Only evict if the pending stamp is still the one this fifo
            // entry queued (the identity may have matched and been
            // re-stamped since).
            if self.pending.get(&key) == Some(&stamp) {
                self.pending.remove(&key);
                self.expired += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::packet::Packet;
    use rlir_sim::{run_network_streamed, Forwarder, Network, NodeId, Port, RouteDecision};
    use rlir_sim::{QueueConfig, TeeSink};
    use std::net::Ipv4Addr;

    fn qcfg() -> QueueConfig {
        QueueConfig {
            rate_bps: 8_000_000_000,
            capacity_bytes: 100_000,
            processing_delay: SimDuration::ZERO,
        }
    }

    fn pkt(id: u64, at_ns: u64) -> Packet {
        Packet::regular(
            id,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, 0, 1),
                1000,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            ),
            1000,
            SimTime::from_nanos(at_ns),
        )
    }

    struct Line {
        last: NodeId,
    }

    impl Forwarder for Line {
        fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
            if node == self.last {
                RouteDecision::Deliver
            } else {
                RouteDecision::Forward(0)
            }
        }
    }

    fn tandem() -> Network {
        let mut net = Network::default();
        let a = net.add_node("S0");
        let b = net.add_node("S1");
        net.add_port(a, Port::to_switch(qcfg(), b, SimDuration::from_nanos(100)));
        net
    }

    #[test]
    fn injection_to_delivery_pair_equals_engine_truth() {
        let inj: Vec<(NodeId, Packet)> = (0..200).map(|i| (0usize, pkt(i, i * 1_500))).collect();
        let mut pair = CapturePair::new(TapPoint::NodeArrival(0), TapPoint::Delivery(1));
        let mut truth_sum = 0u64;
        let mut truth_n = 0u64;
        let stats = run_network_streamed(tandem(), &Line { last: 1 }, inj, &mut pair, |d| {
            truth_sum += d.true_delay().as_nanos();
            truth_n += 1;
        });
        assert_eq!(stats.delivered, 200);
        let report = pair.finish();
        assert_eq!(report.matched, 200);
        assert_eq!(report.unmatched_b, 0);
        assert_eq!(report.residual, 0);
        let truth_mean = truth_sum as f64 / truth_n as f64;
        assert_eq!(
            report.mean_ns(),
            truth_mean,
            "identity-matched capture must equal simulator truth exactly"
        );
    }

    #[test]
    fn timeout_evicts_stamps_of_packets_that_never_reach_b() {
        // Drop everything: every A-stamp must eventually expire, keeping
        // the pending table bounded.
        struct DropAll;
        impl Forwarder for DropAll {
            fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
                if node == 0 {
                    RouteDecision::Forward(0)
                } else {
                    RouteDecision::Drop
                }
            }
        }
        let inj: Vec<(NodeId, Packet)> = (0..500).map(|i| (0usize, pkt(i, i * 2_000))).collect();
        let mut pair = CapturePair::with_timeout(
            TapPoint::NodeArrival(0),
            TapPoint::Delivery(1),
            SimDuration::from_nanos(20_000),
        );
        run_network_streamed(tandem(), &DropAll, inj, &mut pair, |_| {});
        let report = pair.finish();
        assert_eq!(report.matched, 0);
        assert!(report.expired > 400, "stamps must expire: {report:?}");
        assert!(
            report.peak_pending < 50,
            "pending table unbounded: peak {}",
            report.peak_pending
        );
    }

    #[test]
    fn tee_shares_the_stream_between_pair_and_another_sink() {
        let inj: Vec<(NodeId, Packet)> = (0..50).map(|i| (0usize, pkt(i, i * 1_500))).collect();
        let mut pair = CapturePair::new(TapPoint::NodeArrival(0), TapPoint::Delivery(1));
        let mut events = 0u64;
        let mut counter = |_: &rlir_sim::HopEvent<'_>| events += 1;
        {
            let mut tee = TeeSink::new(&mut pair, &mut counter);
            run_network_streamed(tandem(), &Line { last: 1 }, inj, &mut tee, |_| {});
        }
        assert_eq!(pair.finish().matched, 50);
        assert!(events > 0, "second sink starved");
    }
}
