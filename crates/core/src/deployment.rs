//! RLIR instance placement ("we deploy RLI instances in every other
//! switch", §1/§3).
//!
//! For a measured destination ToR, the deployment instantiates:
//!
//! * a **sender per source-ToR uplink interface** (the paper's S1, S2 — an
//!   instance sits on an interface, so a ToR with `k/2` uplinks hosts `k/2`
//!   senders), each emitting one reference stream to *every* core its
//!   packets may cross ("each sender sends reference packets to all
//!   intermediate receivers", §3.1);
//! * a **sender per core router** (S3, S4) whose references cover the
//!   downstream segment core → destination ToR (deterministic, so a single
//!   stream suffices);
//! * receiver roles at the cores (segment 1) and the destination ToR
//!   (segment 2) — receivers are instantiated by the experiment, keyed by
//!   the sender ids assigned here.
//!
//! Reference streams must actually *traverse* the intended path, so their
//! flow keys are engineered against the fabric's ECMP hashes
//! ([`engineer_ref_key`]) — the same same-hash-knowledge assumption that
//! reverse-ECMP demultiplexing makes.

use rlir_net::{FlowKey, SenderId};
use rlir_topo::{FatTree, Role, TopoId};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Reserved host index for measurement instances inside a ToR's `/24`
/// (address `.250`).
pub const INSTANCE_HOST: u64 = 248; // .250 = .2 + 248

/// A sender on one ToR uplink interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TorSenderSpec {
    /// The ToR hosting the instance.
    pub tor: TopoId,
    /// The uplink interface index (0..k/2).
    pub uplink: usize,
    /// Assigned sender id.
    pub id: SenderId,
    /// One engineered reference stream per reachable core:
    /// `(core, flow key that ECMP-routes via that core)`.
    pub targets: Vec<(TopoId, FlowKey)>,
}

/// A sender at a core router (downstream segment).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreSenderSpec {
    /// The core hosting the instance.
    pub core: TopoId,
    /// Assigned sender id.
    pub id: SenderId,
    /// Reference stream towards the destination ToR (downward path is
    /// deterministic, one stream suffices).
    pub target: FlowKey,
}

/// Sender-id arithmetic: ToR senders occupy the low id space, core senders
/// start here.
pub const CORE_SENDER_BASE: u16 = 10_000;

/// A complete RLIR deployment for one measured destination ToR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Deployment {
    /// The destination ToR (hosting the paper's R3 receiver).
    pub dst_tor: TopoId,
    /// Measured source ToRs (each hosting k/2 uplink senders).
    pub src_tors: Vec<TopoId>,
    /// All ToR-uplink senders.
    pub tor_senders: Vec<TorSenderSpec>,
    /// All core senders.
    pub core_senders: Vec<CoreSenderSpec>,
}

impl Deployment {
    /// Build the deployment for flows `src_tors → dst_tor`.
    ///
    /// Panics if a source ToR shares the destination's pod (the paper's
    /// RLIR segments T→C and C→T are inter-pod; intra-pod measurement needs
    /// instances at aggregation switches instead).
    pub fn for_destination(tree: &FatTree, src_tors: &[TopoId], dst_tor: TopoId) -> Deployment {
        let dst_pod = pod_of(tree, dst_tor);
        let half = tree.half();
        let dst_addr = tree.host_addr(dst_tor, INSTANCE_HOST as usize);

        let mut tor_senders = Vec::new();
        for (ti, &tor) in src_tors.iter().enumerate() {
            assert_ne!(
                pod_of(tree, tor),
                dst_pod,
                "source ToR {} shares the destination pod",
                tree.node(tor).name
            );
            for uplink in 0..half {
                let id = SenderId((ti * half + uplink) as u16);
                let targets = (0..half)
                    .map(|member| {
                        let core = tree.core(uplink, member);
                        let key = engineer_ref_key(tree, tor, dst_addr, uplink, member)
                            .unwrap_or_else(|| {
                                panic!(
                                    "no ref key found for {} uplink {uplink} core member {member}",
                                    tree.node(tor).name
                                )
                            });
                        (core, key)
                    })
                    .collect();
                tor_senders.push(TorSenderSpec {
                    tor,
                    uplink,
                    id,
                    targets,
                });
            }
        }

        let core_senders = tree
            .cores()
            .map(|core| {
                let Role::Core { group, member } = tree.node(core).role else {
                    unreachable!("cores() yields cores")
                };
                // Synthetic non-fabric source distinguishes instance traffic;
                // the downward route keys on the destination only.
                let src = Ipv4Addr::new(10, 255, group as u8, member as u8);
                let ordinal = core - tree.cores().next().expect("has cores");
                CoreSenderSpec {
                    core,
                    id: SenderId(CORE_SENDER_BASE + ordinal as u16),
                    target: FlowKey::udp(
                        src,
                        41_000 + ordinal as u16,
                        dst_addr,
                        rlir_net::wire::RLI_UDP_PORT,
                    ),
                }
            })
            .collect();

        Deployment {
            dst_tor,
            src_tors: src_tors.to_vec(),
            tor_senders,
            core_senders,
        }
    }

    /// The sender on `(tor, uplink)`, if deployed.
    pub fn tor_sender(&self, tor: TopoId, uplink: usize) -> Option<&TorSenderSpec> {
        self.tor_senders
            .iter()
            .find(|s| s.tor == tor && s.uplink == uplink)
    }

    /// The sender id whose segment-1 reference stream covers packets from
    /// `origin_tor` through `core`: the uplink is determined by the core's
    /// group, completing the upstream demultiplexing of §3.1.
    pub fn tor_sender_for(
        &self,
        tree: &FatTree,
        origin_tor: TopoId,
        core: TopoId,
    ) -> Option<SenderId> {
        let Role::Core { group, .. } = tree.node(core).role else {
            return None;
        };
        self.tor_sender(origin_tor, group).map(|s| s.id)
    }

    /// The sender at `core`, if deployed.
    pub fn core_sender(&self, core: TopoId) -> Option<&CoreSenderSpec> {
        self.core_senders.iter().find(|s| s.core == core)
    }

    /// Total measurement instances this deployment uses (each sender
    /// instance doubles as a receiver, per §3.1's dual-role assumption),
    /// plus the receiver at the destination ToR.
    pub fn instance_count(&self) -> usize {
        self.tor_senders.len() + self.core_senders.len() + 1
    }
}

fn pod_of(tree: &FatTree, tor: TopoId) -> usize {
    match tree.node(tor).role {
        Role::Tor { pod, .. } => pod,
        _ => panic!("{} is not a ToR", tree.node(tor).name),
    }
}

/// Find a flow key from `src_tor`'s instance address to `dst_addr` that the
/// fabric's ECMP places on `uplink` at the ToR and on core `member` at the
/// aggregation switch. Searches source ports; with 2-way…8-way hashing a hit
/// is expected within a few dozen candidates.
pub fn engineer_ref_key(
    tree: &FatTree,
    src_tor: TopoId,
    dst_addr: Ipv4Addr,
    uplink: usize,
    member: usize,
) -> Option<FlowKey> {
    let half = tree.half();
    let src = tree.host_addr(src_tor, INSTANCE_HOST as usize);
    let pod = pod_of(tree, src_tor);
    let agg = tree.agg(pod, uplink);
    for sport in 20_000..60_000u16 {
        let key = FlowKey::udp(src, sport, dst_addr, rlir_net::wire::RLI_UDP_PORT);
        if tree.node(src_tor).hash.select(&key, half) == uplink
            && tree.node(agg).hash.select(&key, half) == member
        {
            return Some(key);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::HashAlgo;

    fn tree() -> FatTree {
        FatTree::new(4, HashAlgo::default())
    }

    fn deployment(t: &FatTree) -> Deployment {
        Deployment::for_destination(t, &[t.tor(0, 0), t.tor(1, 1)], t.tor(3, 0))
    }

    #[test]
    fn engineered_keys_route_via_intended_core() {
        let t = tree();
        let d = deployment(&t);
        for s in &d.tor_senders {
            for (core, key) in &s.targets {
                let path = t.path(key).expect("engineered key is routable");
                assert!(
                    path.contains(core),
                    "{} uplink {}: key {key} avoids core {}",
                    t.node(s.tor).name,
                    s.uplink,
                    t.node(*core).name
                );
                // And it must actually use the sender's uplink (its agg).
                let pod = super::pod_of(&t, s.tor);
                assert_eq!(path[1], t.agg(pod, s.uplink), "wrong uplink taken");
                assert!(path.ends_with(&[d.dst_tor]));
            }
        }
    }

    #[test]
    fn every_uplink_covers_every_reachable_core() {
        let t = tree();
        let d = deployment(&t);
        // 2 src ToRs × 2 uplinks, each with k/2 = 2 core targets.
        assert_eq!(d.tor_senders.len(), 4);
        for s in &d.tor_senders {
            assert_eq!(s.targets.len(), 2);
            let groups: Vec<_> = s
                .targets
                .iter()
                .map(|(c, _)| match t.node(*c).role {
                    Role::Core { group, .. } => group,
                    _ => unreachable!(),
                })
                .collect();
            assert!(
                groups.iter().all(|g| *g == s.uplink),
                "cores in wrong group"
            );
        }
    }

    #[test]
    fn sender_ids_unique_across_deployment() {
        let t = tree();
        let d = deployment(&t);
        let mut ids: Vec<u16> = d
            .tor_senders
            .iter()
            .map(|s| s.id.0)
            .chain(d.core_senders.iter().map(|s| s.id.0))
            .collect();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "duplicate sender ids");
    }

    #[test]
    fn core_senders_cover_all_cores_and_route_down() {
        let t = tree();
        let d = deployment(&t);
        assert_eq!(d.core_senders.len(), 4);
        for s in &d.core_senders {
            // From the core, the target must route to the destination ToR.
            match t.next_hop(s.core, &s.target) {
                rlir_topo::NextHop::Port(p) => {
                    // Core port p leads to pod p — must be the dst pod (3).
                    assert_eq!(p, 3);
                }
                other => panic!("core routing gave {other:?}"),
            }
        }
    }

    #[test]
    fn demux_lookup_maps_origin_and_core_to_sender() {
        let t = tree();
        let d = deployment(&t);
        let core = t.core(1, 0); // group 1 → uplink 1
        let id = d.tor_sender_for(&t, t.tor(0, 0), core).unwrap();
        assert_eq!(id, d.tor_sender(t.tor(0, 0), 1).unwrap().id);
        // Unmeasured ToR → none.
        assert!(d.tor_sender_for(&t, t.tor(2, 0), core).is_none());
        // Non-core argument → none.
        assert!(d.tor_sender_for(&t, t.tor(0, 0), t.agg(0, 0)).is_none());
    }

    #[test]
    #[should_panic(expected = "shares the destination pod")]
    fn same_pod_source_rejected() {
        let t = tree();
        Deployment::for_destination(&t, &[t.tor(3, 1)], t.tor(3, 0));
    }

    #[test]
    fn instance_count_sane() {
        let t = tree();
        let d = deployment(&t);
        // 4 tor senders + 4 core senders + 1 dst receiver.
        assert_eq!(d.instance_count(), 9);
    }
}
