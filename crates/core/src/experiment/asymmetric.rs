//! Asymmetric-routing round-trip latency measurement.
//!
//! In real data centers the forward and reverse halves of a round trip
//! routinely traverse *different* queues (asymmetric routing — cf. Shobhana
//! et al., "Measuring Round-Trip Response Latencies Under Asymmetric
//! Routing"), so a round-trip time alone cannot say which direction is
//! slow. This scenario models that regime with two independent two-hop
//! tandems: the forward tandem carries the request stream, the reverse
//! tandem carries the mirrored response stream (same flows, direction
//! reversed), and each direction is measured by its own RLI sender/receiver
//! pair. The sweep loads the reverse path progressively harder than the
//! forward path and checks that per-direction RLI attribution keeps
//! working: the per-flow RTT estimate stays accurate, and the direction RLI
//! blames for the latency is the direction that is actually slow.

use super::two_hop::{run_two_hop_on, CrossSpec, TwoHopConfig};
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::fxhash::FxHashMap;
use rlir_net::time::SimDuration;
use rlir_net::FlowKey;
use rlir_rli::{Interpolator, PolicyKind};
use rlir_sim::TandemConfig;
use rlir_stats::Ecdf;
use rlir_trace::{generate, reverse, reverse_flow, Trace};
use serde::{Deserialize, Serialize};

/// Configuration of the asymmetric-routing sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsymmetricConfig {
    /// Master seed (traces; per-point injector seeds are derived).
    pub seed: u64,
    /// Trace duration per direction.
    pub duration: SimDuration,
    /// Injection policy of both directions' senders.
    pub policy: PolicyKind,
    /// Delay estimator of both directions' receivers.
    pub interpolator: Interpolator,
    /// Fixed target utilization of the forward path.
    pub forward_utilization: f64,
    /// Sweep points: target utilization of the reverse path.
    pub reverse_utilizations: Vec<f64>,
    /// Queue/link parameters of the forward tandem.
    pub forward_tandem: TandemConfig,
    /// Queue/link parameters of the reverse tandem (may differ — the whole
    /// point is that the two directions see different queues).
    pub reverse_tandem: TandemConfig,
    /// Flows with fewer estimated packets are excluded from pairing.
    pub min_flow_packets: u64,
}

impl AsymmetricConfig {
    /// Defaults: forward path at a calm 50%, reverse path swept from parity
    /// into the paper's high-load regime.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        AsymmetricConfig {
            seed,
            duration,
            policy: PolicyKind::Static { n: 100 },
            interpolator: Interpolator::Linear,
            forward_utilization: 0.50,
            reverse_utilizations: vec![0.50, 0.67, 0.80, 0.93],
            forward_tandem: TandemConfig::paper(duration),
            reverse_tandem: TandemConfig::paper(duration),
            min_flow_packets: 1,
        }
    }
}

/// One point of the asymmetric sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsymmetricPoint {
    /// Target utilization of the reverse path at this point.
    pub target_reverse_utilization: f64,
    /// Realised forward-path utilization.
    pub forward_utilization: f64,
    /// Realised reverse-path utilization.
    pub reverse_utilization: f64,
    /// Median per-flow relative error of forward mean-delay estimates.
    pub forward_median_error: f64,
    /// Median per-flow relative error of reverse mean-delay estimates.
    pub reverse_median_error: f64,
    /// Median per-flow relative error of the *RTT* estimate
    /// (forward + reverse estimated means vs forward + reverse true means).
    pub rtt_median_error: f64,
    /// Fraction of paired flows whose estimated dominant direction (the
    /// direction RLI blames for most of the RTT) matches the true one.
    pub attribution_accuracy: f64,
    /// Flows measured in both directions.
    pub paired_flows: usize,
    /// Forward-direction per-epoch series.
    pub forward_epochs: Vec<rlir_rli::EpochSnapshot>,
    /// Reverse-direction per-epoch series — the live view of *which half*
    /// of the round trip degrades, and when.
    pub reverse_epochs: Vec<rlir_rli::EpochSnapshot>,
}

/// The sweep as a [`Scenario`] over pre-generated base traces.
pub struct AsymmetricSweep<'a> {
    cfg: &'a AsymmetricConfig,
    forward_regular: &'a Trace,
    reverse_regular: &'a Trace,
    forward_cross: &'a Trace,
    reverse_cross: &'a Trace,
}

impl<'a> AsymmetricSweep<'a> {
    /// Build over explicit base traces (the reverse regular trace is
    /// usually [`reverse`]`(forward_regular, …)` so flows pair up).
    pub fn new(
        cfg: &'a AsymmetricConfig,
        forward_regular: &'a Trace,
        reverse_regular: &'a Trace,
        forward_cross: &'a Trace,
        reverse_cross: &'a Trace,
    ) -> Self {
        AsymmetricSweep {
            cfg,
            forward_regular,
            reverse_regular,
            forward_cross,
            reverse_cross,
        }
    }

    fn direction_cfg(&self, seed: u64, target: f64, tandem: TandemConfig) -> TwoHopConfig {
        let mut cfg = TwoHopConfig::paper(seed, self.cfg.duration);
        cfg.policy = self.cfg.policy.clone();
        cfg.interpolator = self.cfg.interpolator;
        cfg.cross = CrossSpec::Uniform {
            target_utilization: target,
        };
        cfg.min_flow_packets = self.cfg.min_flow_packets;
        cfg.tandem = tandem;
        cfg
    }
}

impl Scenario for AsymmetricSweep<'_> {
    type Point = f64;
    type Outcome = AsymmetricPoint;
    type Aggregate = Vec<AsymmetricPoint>;

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn points(&self) -> Vec<f64> {
        self.cfg.reverse_utilizations.clone()
    }

    fn run_point(&self, ctx: &PointContext, &reverse_target: &f64) -> AsymmetricPoint {
        // Two independent pipelines — different queues per direction. Each
        // direction's injector draws from its own derived stream.
        let fwd_cfg = self.direction_cfg(
            ctx.seed,
            self.cfg.forward_utilization,
            self.cfg.forward_tandem,
        );
        let rev_cfg = self.direction_cfg(
            ctx.seed ^ 0x0E5E_D0F0_0E5E_D0F0,
            reverse_target,
            self.cfg.reverse_tandem,
        );
        let fwd = run_two_hop_on(&fwd_cfg, self.forward_regular, self.forward_cross);
        let rev = run_two_hop_on(&rev_cfg, self.reverse_regular, self.reverse_cross);

        // Pair flows across directions via key reversal and judge the RTT
        // estimate and per-direction attribution.
        let rev_rows: FxHashMap<FlowKey, (f64, f64)> = rev
            .flows
            .report(self.cfg.min_flow_packets)
            .into_iter()
            .filter_map(|r| r.true_mean.map(|t| (r.flow, (r.est_mean, t))))
            .collect();
        let mut rtt_errors = Vec::new();
        let mut attributed = 0usize;
        let mut paired = 0usize;
        for row in fwd.flows.report(self.cfg.min_flow_packets) {
            let Some(t_fwd) = row.true_mean else { continue };
            let Some(&(e_rev, t_rev)) = rev_rows.get(&reverse_flow(&row.flow)) else {
                continue;
            };
            paired += 1;
            let est_rtt = row.est_mean + e_rev;
            let true_rtt = t_fwd + t_rev;
            let err = rlir_stats::relative_error(est_rtt, true_rtt);
            if err.is_finite() {
                rtt_errors.push(err);
            }
            if (e_rev > row.est_mean) == (t_rev > t_fwd) {
                attributed += 1;
            }
        }
        let median = |v: Vec<f64>| {
            Ecdf::new(v.into_iter().filter(|x| x.is_finite()).collect())
                .median()
                .unwrap_or(f64::NAN)
        };
        AsymmetricPoint {
            target_reverse_utilization: reverse_target,
            forward_utilization: fwd.utilization,
            reverse_utilization: rev.utilization,
            forward_median_error: median(fwd.mean_errors),
            reverse_median_error: median(rev.mean_errors),
            rtt_median_error: median(rtt_errors),
            attribution_accuracy: if paired == 0 {
                f64::NAN
            } else {
                attributed as f64 / paired as f64
            },
            paired_flows: paired,
            forward_epochs: fwd.epochs,
            reverse_epochs: rev.epochs,
        }
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = AsymmetricPoint>) -> Vec<AsymmetricPoint> {
        outcomes.collect()
    }
}

/// Base id of the reverse-trace packet-id namespace (disjoint from forward
/// trace ids and from cross-trace ids at `1 << 40`).
const REVERSE_ID_BASE: u64 = 1 << 39;

/// Generate the four base traces of an asymmetric sweep: forward regular,
/// its reversed mirror, and one cross trace per direction.
pub fn asymmetric_traces(cfg: &AsymmetricConfig) -> (Trace, Trace, Trace, Trace) {
    let fwd_cfg = TwoHopConfig::paper(cfg.seed, cfg.duration);
    let forward_regular = generate(&fwd_cfg.regular_trace());
    let reverse_regular = reverse(&forward_regular, REVERSE_ID_BASE);
    let forward_cross = generate(&fwd_cfg.cross_trace());
    let reverse_cross = {
        let mut tc = fwd_cfg.cross_trace();
        tc.seed ^= 0x4153_594D; // "ASYM": an independent reverse-path workload
        generate(&tc)
    };
    (
        forward_regular,
        reverse_regular,
        forward_cross,
        reverse_cross,
    )
}

/// Run the asymmetric sweep, generating traces from the config.
pub fn run_asymmetric(cfg: &AsymmetricConfig, runner: &SweepRunner) -> Vec<AsymmetricPoint> {
    let (fr, rr, fc, rc) = asymmetric_traces(cfg);
    runner.run(&AsymmetricSweep::new(cfg, &fr, &rr, &fc, &rc))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> AsymmetricConfig {
        let mut cfg = AsymmetricConfig::paper(11, SimDuration::from_millis(60));
        cfg.policy = PolicyKind::Static { n: 50 };
        cfg.reverse_utilizations = vec![0.50, 0.93];
        cfg
    }

    #[test]
    fn sweep_pairs_flows_and_tracks_reverse_load() {
        let pts = run_asymmetric(&quick_cfg(), &SweepRunner::single());
        assert_eq!(pts.len(), 2);
        let (lo, hi) = (&pts[0], &pts[1]);
        assert!(lo.paired_flows > 50, "{} paired flows", lo.paired_flows);
        assert!(
            hi.reverse_utilization > lo.reverse_utilization + 0.2,
            "reverse load did not rise: {} vs {}",
            lo.reverse_utilization,
            hi.reverse_utilization
        );
        // Forward path is identically loaded at both points.
        assert!((hi.forward_utilization - lo.forward_utilization).abs() < 0.05);
    }

    #[test]
    fn attribution_identifies_the_hot_direction() {
        let pts = run_asymmetric(&quick_cfg(), &SweepRunner::single());
        let hi = &pts[1];
        // Reverse at 93% vs forward at 50%: nearly every flow's RTT is
        // dominated by the reverse direction, and the estimates must say so.
        assert!(
            hi.attribution_accuracy > 0.7,
            "attribution accuracy {}",
            hi.attribution_accuracy
        );
        assert!(
            hi.rtt_median_error < 1.0,
            "rtt median error {}",
            hi.rtt_median_error
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = {
            let mut c = quick_cfg();
            c.duration = SimDuration::from_millis(30);
            c.reverse_utilizations = vec![0.8];
            c
        };
        let a = run_asymmetric(&cfg, &SweepRunner::single());
        let b = run_asymmetric(&cfg, &SweepRunner::new(2));
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a[0].rtt_median_error.to_bits(),
            b[0].rtt_median_error.to_bits()
        );
        assert_eq!(a[0].paired_flows, b[0].paired_flows);
    }
}
