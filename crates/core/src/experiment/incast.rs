//! Incast / burst-fan-in on the fat-tree.
//!
//! Partition–aggregate workloads (cf. RepNet, Liu et al.) synchronize many
//! senders onto one destination: every worker answers in the same short
//! window, the fan-in collides at the destination ToR's downlink, and
//! queues swing between empty and overloaded within milliseconds — the
//! hardest regime for reference-based latency estimation, because delay
//! changes fastest exactly where samples are sparsest. This scenario drives
//! the §3 RLIR fat-tree with synchronized-burst measured traffic
//! ([`rlir_trace::compress_into_bursts`]) and sweeps the fan-in degree,
//! reporting per-flow estimate accuracy per segment as the bursts steepen.

use super::fattree::{run_fattree, FatTreeExpConfig, FatTreeOutcome};
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::time::SimDuration;
use rlir_rli::EpochSnapshot;
use rlir_stats::Ecdf;
use rlir_trace::BurstShape;
use serde::{Deserialize, Serialize};

/// Configuration of the incast sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncastConfig {
    /// Base fat-tree experiment; `n_src_tors`, `seed` and `burst` are
    /// overridden per point.
    pub base: FatTreeExpConfig,
    /// Sweep points: number of synchronized source ToRs (k = 4 supports up
    /// to 6 sources outside the destination pod).
    pub fan_in: Vec<usize>,
    /// The synchronized burst envelope all sources share.
    pub burst: BurstShape,
}

impl IncastConfig {
    /// Defaults: a k = 4 fabric whose sources each offer 25% of an edge
    /// link squeezed into 20%-duty bursts — a 1.25× instantaneous overload
    /// per source, so the destination downlink saturates once two or more
    /// sources fire together.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        let mut base = FatTreeExpConfig::paper(seed, duration);
        base.measured_load = 0.25;
        IncastConfig {
            base,
            fan_in: vec![1, 2, 4, 6],
            burst: BurstShape {
                period: SimDuration::from_millis(5),
                duty: 0.2,
            },
        }
    }
}

/// One point of the incast sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncastPoint {
    /// Number of synchronized sources at this point.
    pub fan_in: usize,
    /// Median per-flow relative error, segment 1 (source ToR → core).
    pub seg1_median_error: f64,
    /// Median per-flow relative error, segment 2 (core → destination ToR).
    pub seg2_median_error: f64,
    /// Mean true segment-2 delay, µs (burst pressure indicator).
    pub seg2_true_delay_us: f64,
    /// Downstream demux association accuracy.
    pub demux_accuracy: f64,
    /// Measured regular packets delivered end-to-end.
    pub measured_delivered: u64,
    /// Reference packets emitted (ToR + core senders).
    pub refs_emitted: u64,
    /// Segment-2 per-epoch series (merged across receivers): the
    /// burst-resolved latency time-series at the shared downlink.
    pub seg2_epochs: Vec<EpochSnapshot>,
}

impl IncastPoint {
    fn from_outcome(fan_in: usize, out: FatTreeOutcome) -> Self {
        let med = |v: &[f64]| {
            let finite: Vec<f64> = v.iter().copied().filter(|x| x.is_finite()).collect();
            Ecdf::new(finite).median().unwrap_or(f64::NAN)
        };
        IncastPoint {
            fan_in,
            seg1_median_error: med(&out.seg1_errors),
            seg2_median_error: med(&out.seg2_errors),
            seg2_true_delay_us: out.seg2_flows.aggregate_true_mean().unwrap_or(f64::NAN) / 1e3,
            demux_accuracy: out.demux_accuracy(),
            measured_delivered: out.measured_delivered,
            refs_emitted: out.refs_emitted.0 + out.refs_emitted.1,
            seg2_epochs: out.seg2_epochs,
        }
    }
}

/// The incast sweep as a [`Scenario`]: one fan-in degree per point.
pub struct IncastSweep<'a> {
    cfg: &'a IncastConfig,
}

impl<'a> IncastSweep<'a> {
    /// Build from configuration.
    pub fn new(cfg: &'a IncastConfig) -> Self {
        IncastSweep { cfg }
    }
}

impl Scenario for IncastSweep<'_> {
    type Point = usize;
    type Outcome = IncastPoint;
    type Aggregate = Vec<IncastPoint>;

    fn seed(&self) -> u64 {
        self.cfg.base.seed
    }

    fn points(&self) -> Vec<usize> {
        self.cfg.fan_in.clone()
    }

    fn run_point(&self, _ctx: &PointContext, &fan_in: &usize) -> IncastPoint {
        // The seed is deliberately held fixed across points (like the demux
        // ablation): the fan-in degree is the only variable, so adjacent
        // points differ by burst pressure alone, not trace-regeneration
        // noise. Determinism does not need per-point seeds here — the
        // config already differs per point.
        let mut cfg = self.cfg.base.clone();
        cfg.n_src_tors = fan_in;
        cfg.burst = Some(self.cfg.burst);
        IncastPoint::from_outcome(fan_in, run_fattree(&cfg))
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = IncastPoint>) -> Vec<IncastPoint> {
        outcomes.collect()
    }
}

/// Run the incast sweep through the shared executor.
pub fn run_incast(cfg: &IncastConfig, runner: &SweepRunner) -> Vec<IncastPoint> {
    runner.run(&IncastSweep::new(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_rli::PolicyKind;

    fn quick_cfg() -> IncastConfig {
        let mut cfg = IncastConfig::paper(17, SimDuration::from_millis(20));
        cfg.base.policy = PolicyKind::Static { n: 30 };
        cfg.fan_in = vec![1, 4];
        cfg
    }

    #[test]
    fn fan_in_raises_burst_pressure() {
        let pts = run_incast(&quick_cfg(), &SweepRunner::single());
        assert_eq!(pts.len(), 2);
        let (lo, hi) = (&pts[0], &pts[1]);
        assert_eq!((lo.fan_in, hi.fan_in), (1, 4));
        assert!(lo.measured_delivered > 100, "{}", lo.measured_delivered);
        assert!(hi.measured_delivered > lo.measured_delivered);
        assert!(lo.refs_emitted > 0 && hi.refs_emitted > 0);
        // Synchronized fan-in must visibly load the shared downlink.
        assert!(
            hi.seg2_true_delay_us > lo.seg2_true_delay_us,
            "fan-in 4 delay {} µs not above fan-in 1 delay {} µs",
            hi.seg2_true_delay_us,
            lo.seg2_true_delay_us
        );
    }

    #[test]
    fn estimates_survive_bursts() {
        let pts = run_incast(&quick_cfg(), &SweepRunner::single());
        for p in &pts {
            assert!(p.demux_accuracy > 0.99, "demux {}", p.demux_accuracy);
            assert!(
                p.seg2_median_error.is_finite() && p.seg2_median_error < 1.5,
                "seg2 median error {}",
                p.seg2_median_error
            );
            // The burst-resolved downlink series rides along.
            assert!(p.seg2_epochs.iter().any(|e| e.estimated > 0));
        }
    }

    #[test]
    fn thread_count_invariant() {
        let cfg = quick_cfg();
        let a = run_incast(&cfg, &SweepRunner::single());
        let b = run_incast(&cfg, &SweepRunner::new(2));
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.fan_in, y.fan_in);
            assert_eq!(x.seg2_median_error.to_bits(), y.seg2_median_error.to_bits());
            assert_eq!(x.measured_delivered, y.measured_delivered);
        }
    }
}
