//! The paper's controlled two-hop experiment (Fig. 3 environment).
//!
//! One run wires together: synthetic regular + cross traces (`rlir-trace`),
//! the RLI sender instrumenting the regular stream at switch 1
//! (`rlir-rli`), the calibrated cross-traffic injector and the two-switch
//! tandem (`rlir-sim`), and the RLI receiver at switch 2's egress — then
//! reports per-flow estimation errors, realised bottleneck utilization,
//! loss rates and average true latency. Figures 4(a)–(c) and 5 are sweeps
//! over these runs.

use crate::plane::{
    DrainMode, MeasurementPlane, PlaneConfig, TapPoint, TapSpec, TruthRef, TANDEM_SW2,
};
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::clock::ClockPair;
use rlir_net::packet::Packet;
use rlir_net::time::SimDuration;
use rlir_net::{FlowKey, SenderId};
use rlir_rli::EpochSnapshot;
use rlir_rli::{FlowTable, Interpolator, PolicyKind, ReceiverCounters, RliSender};
use rlir_sim::{calibrate_keep_prob, run_tandem_with, CrossInjector, CrossModel, TandemConfig};
use rlir_trace::{generate, Trace, TraceConfig};
use serde::{Deserialize, Serialize};

/// Cross-traffic specification in terms of the *target bottleneck
/// utilization*; the keep-probability is calibrated from the base traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CrossSpec {
    /// No cross traffic at all.
    None,
    /// The paper's "random" model.
    Uniform {
        /// Desired bottleneck utilization (regular + cross), e.g. 0.93.
        target_utilization: f64,
    },
    /// The paper's bursty model (on/off injection windows).
    Bursty {
        /// Desired *average* bottleneck utilization.
        target_utilization: f64,
        /// Injection (burst) duration.
        on: SimDuration,
        /// Gap between bursts.
        off: SimDuration,
    },
}

impl CrossSpec {
    /// The target utilization this spec aims for (regular-only for `None`).
    pub fn target(&self) -> Option<f64> {
        match self {
            CrossSpec::None => None,
            CrossSpec::Uniform { target_utilization }
            | CrossSpec::Bursty {
                target_utilization, ..
            } => Some(*target_utilization),
        }
    }

    /// Figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            CrossSpec::None => "none",
            CrossSpec::Uniform { .. } => "random",
            CrossSpec::Bursty { .. } => "bursty",
        }
    }
}

/// Full configuration of one two-hop run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoHopConfig {
    /// Master seed (traces, injector).
    pub seed: u64,
    /// Trace duration (the paper used 60 s traces; scaled runs use less).
    pub duration: SimDuration,
    /// Injection policy (paper: static 1-and-100 vs adaptive 10…300).
    pub policy: PolicyKind,
    /// Cross-traffic model and utilization target.
    pub cross: CrossSpec,
    /// Delay estimator.
    pub interpolator: Interpolator,
    /// Sender/receiver clock models (perfect by default).
    pub clocks: ClockPair,
    /// Inject reference packets at all? (`false` gives the Fig. 5 baseline
    /// runs that isolate reference-packet interference.)
    pub inject_references: bool,
    /// Flows with fewer estimated packets than this are excluded from the
    /// error CDFs.
    pub min_flow_packets: u64,
    /// Additionally track this per-flow delay quantile with P² estimators
    /// (e.g. `Some(0.9)` for per-flow p90 tail latency).
    pub track_quantile: Option<f64>,
    /// Epoch width of the measurement plane: the receiver streams one
    /// bounded [`EpochSnapshot`] per epoch ([`TwoHopOutcome::epochs`]).
    /// `None` keeps whole-run aggregates only. Never perturbs the per-flow
    /// statistics.
    pub epoch: Option<SimDuration>,
    /// Run the measurement plane's pre-streaming buffered-sort drain (the
    /// differential oracle) instead of the default streaming path. For
    /// testing/benchmarking only: O(run) memory, unordered tap.
    pub buffered_oracle: bool,
    /// Queue/link parameters of the tandem.
    pub tandem: TandemConfig,
}

impl TwoHopConfig {
    /// Paper-flavoured defaults: static 1-and-100, random cross traffic at
    /// 93% target utilization, perfect clocks, linear interpolation.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        TwoHopConfig {
            seed,
            duration,
            policy: PolicyKind::Static { n: 100 },
            cross: CrossSpec::Uniform {
                target_utilization: 0.93,
            },
            interpolator: Interpolator::Linear,
            clocks: ClockPair::perfect(),
            inject_references: true,
            min_flow_packets: 1,
            track_quantile: None,
            epoch: Some(SimDuration::from_millis(5)),
            buffered_oracle: false,
            tandem: TandemConfig::paper(duration),
        }
    }

    /// The regular-trace configuration for this run.
    pub fn regular_trace(&self) -> TraceConfig {
        TraceConfig::paper_regular(self.seed, self.duration)
    }

    /// The cross-trace configuration for this run.
    pub fn cross_trace(&self) -> TraceConfig {
        TraceConfig::paper_cross(self.seed, self.duration)
    }
}

/// Everything one run produces.
#[derive(Debug, Clone)]
pub struct TwoHopOutcome {
    /// Per-flow estimated vs true statistics.
    pub flows: FlowTable,
    /// Receiver counters.
    pub receiver: ReceiverCounters,
    /// Realised bottleneck (switch 2) utilization.
    pub utilization: f64,
    /// End-to-end regular-packet loss rate.
    pub regular_loss: f64,
    /// End-to-end reference-packet loss rate.
    pub reference_loss: f64,
    /// Reference packets emitted by the sender.
    pub refs_emitted: u64,
    /// Regular packets offered by the trace.
    pub regulars_offered: u64,
    /// Mean of per-flow true mean delays, ns (paper quotes 3.0 µs @67% and
    /// 83 µs @93%).
    pub avg_true_delay_ns: f64,
    /// Per-flow relative errors of mean estimates (Fig. 4a/4c samples).
    pub mean_errors: Vec<f64>,
    /// Per-flow relative errors of std-dev estimates (Fig. 4b samples).
    pub std_errors: Vec<f64>,
    /// Per-flow relative errors of tail-quantile estimates (present when
    /// `track_quantile` was set).
    pub quantile_errors: Vec<f64>,
    /// Per-epoch latency time-series (present when [`TwoHopConfig::epoch`]
    /// was set): estimate/truth moments and counter deltas per epoch.
    pub epochs: Vec<EpochSnapshot>,
    /// High-water mark of observations buffered by the plane for this run
    /// (0 for the default ordered streaming tap; O(run) under the
    /// buffered-sort oracle).
    pub peak_pending: usize,
}

/// The synthetic reference-stream flow key for the tandem (single path, so
/// any key works; kept outside both traffic prefixes).
fn tandem_ref_key() -> FlowKey {
    FlowKey::udp(
        "10.1.255.254".parse().expect("static"),
        40_000,
        "10.200.255.254".parse().expect("static"),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

/// Run a two-hop experiment, generating traces from the config.
pub fn run_two_hop(cfg: &TwoHopConfig) -> TwoHopOutcome {
    let regular = generate(&cfg.regular_trace());
    let cross = generate(&cfg.cross_trace());
    run_two_hop_on(cfg, &regular, &cross)
}

/// Static-dispatch "either" iterator so the four upstream/cross stream
/// shapes below avoid boxing on the per-packet hot path.
enum EitherIter<L, R> {
    /// First shape.
    L(L),
    /// Second shape.
    R(R),
}

impl<T, L: Iterator<Item = T>, R: Iterator<Item = T>> Iterator for EitherIter<L, R> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        match self {
            EitherIter::L(l) => l.next(),
            EitherIter::R(r) => r.next(),
        }
    }
}

/// Run a two-hop experiment on pre-generated traces (sweeps share the same
/// base traces across points, like the paper reusing its two CAIDA traces).
///
/// The whole pipeline is streaming: the regular trace is instrumented by
/// the RLI sender, merged with the filtered cross stream through the
/// tandem, and every delivery is fed straight into the receiver — no
/// intermediate per-run packet buffers, no per-packet allocation. The seed
/// materialised three whole-trace `Vec`s here (filtered cross, instrumented
/// upstream, deliveries); on the Fig. 4 utilization sweep that was the
/// dominant cost.
pub fn run_two_hop_on(cfg: &TwoHopConfig, regular: &Trace, cross: &Trace) -> TwoHopOutcome {
    // Calibrate the injector for the requested bottleneck utilization.
    let regular_util = regular.offered_utilization();
    let cross_util = cross.offered_utilization();
    let model = match cfg.cross {
        CrossSpec::None => None,
        CrossSpec::Uniform { target_utilization } => Some(CrossModel::Uniform {
            keep_prob: calibrate_keep_prob(target_utilization, regular_util, cross_util, 1.0),
        }),
        CrossSpec::Bursty {
            target_utilization,
            on,
            off,
        } => {
            let duty = on.as_nanos() as f64 / (on.as_nanos() + off.as_nanos()).max(1) as f64;
            Some(CrossModel::Bursty {
                keep_prob: calibrate_keep_prob(target_utilization, regular_util, cross_util, duty),
                on,
                off,
            })
        }
    };

    // Cross stream: lazily filtered by the injector (no materialised Vec).
    let mut injector = model.map(|m| CrossInjector::new(m, cfg.seed ^ 0xC505_11EC));
    let cross_iter = match injector.as_mut() {
        Some(inj) => EitherIter::L(inj.filter(cross.packets.iter().copied())),
        None => EitherIter::R(std::iter::empty::<Packet>()),
    };

    // Upstream stream: the regular trace instrumented in-line by the RLI
    // sender (or passed through untouched for the interference baseline).
    // The sender stays owned here so its counters survive the run.
    let regular_iter = regular.packets.iter().copied();
    let mut sender = cfg.inject_references.then(|| {
        RliSender::new(
            SenderId(1),
            cfg.clocks.sender,
            cfg.policy.build(),
            vec![tandem_ref_key()],
        )
    });
    let upstream = match sender.as_mut() {
        Some(s) => EitherIter::L(s.instrument_by_ref(regular_iter)),
        None => EitherIter::R(regular_iter),
    };

    // The measurement plane with one tap at switch 2's host-facing egress,
    // fed directly from the streaming tandem merge in delivery order (so
    // the tap streams — no buffering on this hot path). The buffered-sort
    // oracle instead routes the same feed through the plane's unordered
    // drain, for the differential tests.
    let mut plane = MeasurementPlane::with_config(PlaneConfig {
        drain: if cfg.buffered_oracle {
            DrainMode::BufferedSort
        } else {
            DrainMode::default()
        },
        epoch: cfg.epoch,
        ..PlaneConfig::default()
    });
    let mut tap = TapSpec::new("sw2-egress", TapPoint::Delivery(TANDEM_SW2), SenderId(1));
    tap.truth = TruthRef::SinceInjection;
    tap.ordered = !cfg.buffered_oracle;
    tap.clock = cfg.clocks.receiver;
    tap.interpolator = cfg.interpolator;
    tap.track_quantile = cfg.track_quantile;
    plane.attach(tap);
    let result = run_tandem_with(&cfg.tandem, upstream, cross_iter, |d| {
        plane.observe_tandem(d);
    });
    let refs_emitted = sender.map(|s| s.refs_emitted()).unwrap_or(0);
    let tap_report = plane.finish().taps.pop().expect("one tap");
    let peak_pending = tap_report.peak_pending;
    let report = tap_report.report;

    let mean_errors = report.flows.mean_relative_errors(cfg.min_flow_packets);
    let std_errors = report.flows.std_relative_errors(cfg.min_flow_packets);
    let quantile_errors = report.flows.quantile_relative_errors(cfg.min_flow_packets);
    TwoHopOutcome {
        utilization: result.bottleneck_utilization(),
        regular_loss: result.regular_loss_rate(),
        reference_loss: result.reference_loss_rate(),
        refs_emitted,
        regulars_offered: regular.packets.len() as u64,
        avg_true_delay_ns: report.flows.average_true_delay_ns().unwrap_or(0.0),
        receiver: report.counters,
        mean_errors,
        std_errors,
        quantile_errors,
        epochs: report.epochs,
        peak_pending,
        flows: report.flows,
    }
}

/// One labeled run of a [`TwoHopSweep`]: a legend label, the target
/// utilization it represents, the full run configuration, and which of the
/// sweep's shared cross traces feeds it.
#[derive(Debug, Clone)]
pub struct TwoHopPoint {
    /// Figure-legend label, e.g. `"Adaptive, 93%"`.
    pub label: String,
    /// Target bottleneck utilization this point aims for.
    pub target: f64,
    /// The full run configuration.
    pub cfg: TwoHopConfig,
    /// Index into [`TwoHopSweep::crosses`] selecting the base cross trace
    /// (figures mix normally- and hot-generated cross traces).
    pub cross: usize,
}

impl TwoHopPoint {
    /// A point using the sweep's first (usually only) cross trace.
    pub fn new(label: impl Into<String>, target: f64, cfg: TwoHopConfig) -> Self {
        TwoHopPoint {
            label: label.into(),
            target,
            cfg,
            cross: 0,
        }
    }
}

/// A labeled grid of two-hop runs sharing base traces — the shape of every
/// accuracy figure and ablation (policy × utilization, interpolators, clock
/// scenarios, …), executed by the shared [`SweepRunner`].
///
/// Each point's config is explicit and self-contained, so the sweep is
/// deterministic for any thread count without per-point seed rewriting
/// (sweeps that *want* derived per-point seeds embed them when building
/// their points).
pub struct TwoHopSweep<'a> {
    /// Master seed (used only for point-context derivation; the runs
    /// themselves are seeded by their configs).
    pub seed: u64,
    /// The labeled grid.
    pub points: Vec<TwoHopPoint>,
    /// Shared regular base trace.
    pub regular: &'a Trace,
    /// Shared cross base traces, indexed by [`TwoHopPoint::cross`].
    pub crosses: Vec<&'a Trace>,
}

impl Scenario for TwoHopSweep<'_> {
    type Point = TwoHopPoint;
    type Outcome = (String, f64, TwoHopOutcome);
    type Aggregate = Vec<(String, f64, TwoHopOutcome)>;

    fn seed(&self) -> u64 {
        self.seed
    }

    fn points(&self) -> Vec<TwoHopPoint> {
        self.points.clone()
    }

    fn run_point(&self, _ctx: &PointContext, point: &TwoHopPoint) -> Self::Outcome {
        let cross = self.crosses[point.cross];
        let out = run_two_hop_on(&point.cfg, self.regular, cross);
        (point.label.clone(), point.target, out)
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = Self::Outcome>) -> Self::Aggregate {
        outcomes.collect()
    }
}

/// Run a labeled two-hop grid through the shared executor, returning
/// `(label, target, outcome)` rows in point order.
pub fn run_two_hop_sweep(
    sweep: &TwoHopSweep<'_>,
    runner: &SweepRunner,
) -> Vec<(String, f64, TwoHopOutcome)> {
    runner.run(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(target: f64) -> TwoHopConfig {
        let mut cfg = TwoHopConfig::paper(7, SimDuration::from_millis(60));
        cfg.cross = CrossSpec::Uniform {
            target_utilization: target,
        };
        cfg.policy = PolicyKind::Static { n: 50 };
        cfg
    }

    #[test]
    fn utilization_calibration_hits_target() {
        for target in [0.5f64, 0.8] {
            let out = run_two_hop(&quick_cfg(target));
            assert!(
                (out.utilization - target).abs() < 0.08,
                "target {target}, realised {}",
                out.utilization
            );
        }
    }

    #[test]
    fn produces_flow_estimates_with_sane_errors() {
        let out = run_two_hop(&quick_cfg(0.8));
        assert!(
            out.flows.flow_count() > 100,
            "{} flows",
            out.flows.flow_count()
        );
        assert!(!out.mean_errors.is_empty());
        assert!(out.refs_emitted > 0);
        assert!(out.receiver.estimated > 0);
        // Median relative error should be well under 100% at high load.
        let med = rlir_stats::Ecdf::new(out.mean_errors.clone())
            .median()
            .unwrap();
        assert!(med < 1.0, "median error {med}");
    }

    #[test]
    fn no_references_means_no_estimates() {
        let mut cfg = quick_cfg(0.6);
        cfg.inject_references = false;
        let out = run_two_hop(&cfg);
        assert_eq!(out.refs_emitted, 0);
        assert_eq!(out.receiver.estimated, 0);
        assert_eq!(out.flows.flow_count(), 0);
    }

    #[test]
    fn higher_utilization_means_higher_delay() {
        let lo = run_two_hop(&quick_cfg(0.55));
        let hi = run_two_hop(&quick_cfg(0.93));
        assert!(
            hi.avg_true_delay_ns > lo.avg_true_delay_ns * 1.5,
            "delay did not grow: {} vs {}",
            lo.avg_true_delay_ns,
            hi.avg_true_delay_ns
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_two_hop(&quick_cfg(0.7));
        let b = run_two_hop(&quick_cfg(0.7));
        assert_eq!(a.utilization, b.utilization);
        assert_eq!(a.mean_errors, b.mean_errors);
        assert_eq!(a.refs_emitted, b.refs_emitted);
    }

    #[test]
    fn sweep_runs_labeled_grid_in_point_order() {
        let regular = generate(&quick_cfg(0.7).regular_trace());
        let cross = generate(&quick_cfg(0.7).cross_trace());
        let sweep = TwoHopSweep {
            seed: 7,
            points: vec![
                TwoHopPoint::new("lo", 0.55, quick_cfg(0.55)),
                TwoHopPoint::new("hi", 0.93, quick_cfg(0.93)),
            ],
            regular: &regular,
            crosses: vec![&cross],
        };
        let rows = run_two_hop_sweep(&sweep, &rlir_exec::SweepRunner::new(2));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "lo");
        assert_eq!(rows[1].0, "hi");
        assert!(rows[0].2.utilization < rows[1].2.utilization);
        // Same grid, one thread: identical outcomes.
        let seq = run_two_hop_sweep(&sweep, &rlir_exec::SweepRunner::single());
        assert_eq!(seq[1].2.mean_errors, rows[1].2.mean_errors);
    }

    #[test]
    fn epoch_series_tallies_with_counters() {
        let out = run_two_hop(&quick_cfg(0.8));
        assert!(out.epochs.len() > 5, "{} epochs", out.epochs.len());
        let est: u64 = out.epochs.iter().map(|e| e.estimated).sum();
        assert_eq!(est, out.receiver.estimated, "epochs must tally");
        let seen: u64 = out.epochs.iter().map(|e| e.regulars_seen).sum();
        assert_eq!(seen, out.receiver.regulars_seen);
        assert_eq!(out.peak_pending, 0, "ordered tap buffers nothing");
        // Delay rises under load mid-run: the series is a real time-series,
        // not a constant replicated per epoch.
        let means: Vec<f64> = out.epochs.iter().filter_map(|e| e.est_mean()).collect();
        assert!(means.len() > 2);
        let (lo, hi) = means
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &m| (l.min(m), h.max(m)));
        assert!(hi > lo, "per-epoch means must vary: {means:?}");
    }

    #[test]
    fn cross_spec_labels() {
        assert_eq!(CrossSpec::None.label(), "none");
        assert_eq!(
            CrossSpec::Uniform {
                target_utilization: 0.5
            }
            .label(),
            "random"
        );
        assert_eq!(CrossSpec::None.target(), None);
    }
}
