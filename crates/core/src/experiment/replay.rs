//! Trace replay through the streaming ingest path, scored against an
//! **external** ground truth.
//!
//! The paper's evaluation replays real router captures (CAIDA OC-192)
//! through the simulated tandem. This harness is that front end on the
//! O(buffer)-ingest path: a nanosecond pcap — a file given on the command
//! line, or a synthetic capture generated and round-tripped through the
//! pcap encoder when none is — streams off disk as a pull-based
//! [`PcapReplaySource`], gets the RLI reference stream interleaved on the
//! fly ([`RefInterleave`], byte-identical to the old
//! materialize-then-sort interleave), and drives the tandem
//! `S0 → S1 → host` with three observers teed onto one hop-event stream:
//!
//! * an RLI tap at the delivery point (the estimate under test);
//! * a [`CapturePair`] stamping every packet at `S0`'s ingress and
//!   matching it again at delivery — per-flow latency by wire identity
//!   (RFC 1242), the measurement a pair of real capture points would
//!   make, independent of simulator-internal truth state;
//! * a [`StreamDigest`] over the full event + watermark + delivery
//!   stream.
//!
//! When [`ReplayConfig::verify_vs_vec`] is set (the default) the same
//! capture is replayed a second time through the legacy Vec ingest and
//! the two digests are compared in-run — every replay re-proves the
//! streaming path is byte-identical to its oracle on the exact workload
//! it just measured, not just on the test-suite workloads.

use crate::capture::{CapturePair, CaptureReport};
use crate::plane::{MeasurementPlane, PlaneConfig, TapPoint, TapSpec, TruthRef};
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::SimDuration;
use rlir_net::FlowKey;
use rlir_rli::{EpochSnapshot, PolicyKind, RliSender};
use rlir_sim::{
    run_network_streamed, run_network_streamed_source, Forwarder, InjectionSource, Network,
    NetworkRunStats, NodeId, Port, QueueConfig, RouteDecision, RunOptions, StreamDigest, TeeSink,
};
use rlir_trace::{generate, EntryMap, PcapRecords, PcapReplaySource, PcapWriter, TraceConfig};
use std::collections::VecDeque;
use std::io::Read;
use std::path::PathBuf;

/// Configuration of a trace replay.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Seed for the fallback synthetic capture (unused when a trace file
    /// is given).
    pub seed: u64,
    /// Duration of the fallback synthetic capture.
    pub duration: SimDuration,
    /// Capture to replay; `None` generates one (see module docs).
    pub trace_path: Option<PathBuf>,
    /// Entry-node demux spec, [`EntryMap::parse`] syntax. The tandem has
    /// nodes `0` (ingress) and `1` (bottleneck); mapped nodes must be one
    /// of those.
    pub entry_spec: String,
    /// Replay reorder window in nanoseconds (0 suffices for captures this
    /// workspace wrote; raise it for captures with timestamping jitter).
    pub reorder_ns: u64,
    /// Offered load of the fallback capture, as a fraction of the
    /// bottleneck rate.
    pub target_utilization: f64,
    /// Reference-injection policy of the RLI sender at S0.
    pub policy: PolicyKind,
    /// Ingress switch (S0) queue.
    pub ingress_queue: QueueConfig,
    /// Bottleneck switch (S1) queue — delivery happens after it.
    pub bottleneck_queue: QueueConfig,
    /// Link delay S0 → S1 and S1 → host.
    pub link_delay: SimDuration,
    /// Epoch width of the measurement plane.
    pub epoch: Option<SimDuration>,
    /// Replay the capture a second time through the legacy Vec ingest and
    /// compare full-stream digests (sets
    /// [`ReplayOutcome::ingest_identical`]).
    pub verify_vs_vec: bool,
    /// Run the pcap path in lenient (skip-and-count) mode: damaged
    /// records are skipped with resync, time regressions clamped,
    /// duplicate wire identities capped. Strict mode (the default) fails
    /// fast on the first bad record.
    pub lenient: bool,
}

impl ReplayConfig {
    /// Defaults: the drop-aware tandem run calm (70% of the bottleneck),
    /// so the capture pair matches nearly every packet.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        ReplayConfig {
            seed,
            duration,
            trace_path: None,
            entry_spec: "fixed:0".to_string(),
            reorder_ns: 0,
            target_utilization: 0.7,
            policy: PolicyKind::Static { n: 100 },
            ingress_queue: QueueConfig {
                rate_bps: 10_000_000_000,
                capacity_bytes: 512 * 1024,
                processing_delay: SimDuration::from_micros(1),
            },
            bottleneck_queue: QueueConfig {
                rate_bps: 5_000_000_000,
                capacity_bytes: 256 * 1024,
                processing_delay: SimDuration::from_micros(1),
            },
            link_delay: SimDuration::from_micros(1),
            epoch: Some(SimDuration::from_millis(5)),
            verify_vs_vec: true,
            lenient: false,
        }
    }
}

/// What one replay produced.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// True when no trace file was given and a synthetic capture was
    /// generated and round-tripped through the pcap encoder.
    pub generated_fallback: bool,
    /// Pcap records decoded off disk.
    pub records_read: u64,
    /// Records injected into the engine (read minus shed).
    pub replayed: u64,
    /// Records shed for being more disordered than the reorder window.
    pub late_dropped: u64,
    /// High-water mark of the replay reorder buffer — the whole
    /// ingest-side memory bound.
    pub source_peak_buffered: usize,
    /// RLI reference packets interleaved into the stream.
    pub refs_emitted: u64,
    /// Packets delivered (regulars + references).
    pub delivered: u64,
    /// Scheduler events processed.
    pub events: u64,
    /// Engine in-flight high-water mark.
    pub peak_live_slots: usize,
    /// Capture pair: packets matched at both points.
    pub capture_matched: u64,
    /// Capture pair: stamps expired (packets lost between the points).
    pub capture_expired: u64,
    /// Capture pair: pending-table high-water mark.
    pub capture_peak_pending: usize,
    /// Capture pair: mean latency over regular-traffic flows, ns — the
    /// external ground truth.
    pub capture_mean_ns: f64,
    /// Engine-internal mean true delay of delivered regulars, ns.
    pub truth_mean_ns: f64,
    /// `capture_mean_ns` vs `truth_mean_ns` — how faithful the external
    /// measurement itself is (≈ 0 on the tandem).
    pub capture_vs_truth_rel_err: f64,
    /// RLI tap: estimated mean at the delivery point, ns.
    pub rli_est_mean_ns: f64,
    /// RLI estimate scored against the **capture pair's** truth — the
    /// paper's accuracy claim, judged by an external instrument.
    pub rli_vs_capture_rel_err: f64,
    /// `Some(true)` when the Vec-ingest oracle replay produced a
    /// bit-identical event/watermark/delivery stream; `None` when the
    /// verification pass was disabled.
    pub ingest_identical: Option<bool>,
    /// RLI tap per-epoch series.
    pub epochs: Vec<EpochSnapshot>,
}

/// `S0 → S1 → host`: forward out port 0 everywhere; S1's only port is
/// host-facing, so delivery happens after its queue.
struct Line;
impl Forwarder for Line {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

const S0: NodeId = 0;
const S1: NodeId = 1;

fn ref_key() -> FlowKey {
    FlowKey::udp(
        "10.3.255.254".parse().expect("static"),
        40_000,
        "10.200.255.254".parse().expect("static"),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

/// Interleave an [`RliSender`]'s reference stream into any
/// [`InjectionSource`], references first at each injection instant —
/// exactly the order the materialized idiom produces (`for r in
/// sender.observe(p) { push(r) } push(p)` followed by a stable sort by
/// injection time). References enter at the sender's attach node; the
/// triggering packet keeps its own entry node. Emission stays monotone
/// because references carry the triggering packet's injection time.
pub struct RefInterleave<S: InjectionSource> {
    inner: S,
    sender: RliSender,
    ref_node: NodeId,
    queue: VecDeque<(NodeId, Packet)>,
}

impl<S: InjectionSource> RefInterleave<S> {
    /// Wrap `inner`, injecting `sender`'s references at `ref_node`.
    pub fn new(inner: S, sender: RliSender, ref_node: NodeId) -> Self {
        RefInterleave {
            inner,
            sender,
            ref_node,
            queue: VecDeque::new(),
        }
    }

    /// The wrapped source (for its counters after the run).
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// The sender (for [`RliSender::refs_emitted`] after the run).
    pub fn sender(&self) -> &RliSender {
        &self.sender
    }

    fn fill(&mut self) {
        if !self.queue.is_empty() {
            return;
        }
        if let Some((node, p)) = self.inner.next_injection() {
            for r in self.sender.observe(&p) {
                self.queue.push_back((self.ref_node, *r));
            }
            self.queue.push_back((node, p));
        }
    }
}

impl<S: InjectionSource> InjectionSource for RefInterleave<S> {
    fn peek(&mut self) -> Option<rlir_net::time::SimTime> {
        self.fill();
        self.queue.front().map(|(_, p)| p.created_at)
    }

    fn next_injection(&mut self) -> Option<(NodeId, Packet)> {
        self.fill();
        self.queue.pop_front()
    }

    // Hints are scheduler geometry only (drain order is
    // geometry-independent); the inner counts undercount by the
    // references, which is fine for a hint.
    fn len_hint(&self) -> Option<usize> {
        self.inner.len_hint()
    }

    fn span_hint(&self) -> Option<u64> {
        self.inner.span_hint()
    }
}

fn build_net(cfg: &ReplayConfig) -> Network {
    let mut net = Network::default();
    net.add_node("S0");
    net.add_node("S1");
    net.add_port(S0, Port::to_switch(cfg.ingress_queue, S1, cfg.link_delay));
    net.add_port(S1, Port::to_host(cfg.bottleneck_queue, cfg.link_delay));
    net
}

fn mk_sender(cfg: &ReplayConfig) -> RliSender {
    RliSender::new(
        SenderId(1),
        ClockModel::perfect(),
        cfg.policy.build(),
        vec![ref_key()],
    )
}

/// Generate the fallback capture: the synthetic regular trace encoded as
/// an in-memory nanosecond pcap, so the replay still exercises the full
/// decode path (record framing, ident round-trip, ToS restoration).
pub fn synth_capture(cfg: &ReplayConfig) -> Vec<u8> {
    let mut tc = TraceConfig::paper_regular(cfg.seed, cfg.duration);
    tc.link_rate_bps = cfg.bottleneck_queue.rate_bps;
    tc.target_utilization = cfg.target_utilization;
    let trace = generate(&tc);
    let mut w = PcapWriter::new(Vec::new()).expect("in-memory capture");
    for p in &trace.packets {
        w.write(p).expect("in-memory capture");
    }
    w.finish().expect("in-memory capture")
}

struct StreamedRun {
    stats: NetworkRunStats,
    digest: u64,
    truth_sum: u64,
    truth_n: u64,
    capture: CaptureReport,
    est_mean_ns: f64,
    epochs: Vec<EpochSnapshot>,
    records_read: u64,
    replayed: u64,
    late_dropped: u64,
    peak_buffered: usize,
    refs_emitted: u64,
}

/// One streamed replay with the full observer stack.
fn replay_streamed<R: Read>(
    cfg: &ReplayConfig,
    records: PcapRecords<R>,
    entry: EntryMap,
) -> StreamedRun {
    let pcap = PcapReplaySource::new(records, entry, cfg.reorder_ns);
    let pcap = if cfg.lenient { pcap.lenient() } else { pcap };
    let mut source = RefInterleave::new(pcap, mk_sender(cfg), S0);

    let mut plane = MeasurementPlane::with_config(PlaneConfig {
        epoch: cfg.epoch,
        ..PlaneConfig::default()
    });
    let mut tap = TapSpec::new("replay", TapPoint::Delivery(S1), SenderId(1));
    // Delivery at S1 leaves one FIFO host port plus a constant link
    // delay, so the feed is ordered and streams unbuffered.
    tap.ordered = true;
    tap.truth = TruthRef::SinceInjection;
    plane.attach(tap);
    let mut pair = CapturePair::new(TapPoint::NodeArrival(S0), TapPoint::Delivery(S1));
    let mut digest = StreamDigest::default();

    let mut delivery_digest = StreamDigest::default();
    let mut truth_sum = 0u64;
    let mut truth_n = 0u64;
    let stats = {
        let mut observers = TeeSink::new(&mut plane, &mut pair);
        let mut sink = TeeSink::new(&mut digest, &mut observers);
        run_network_streamed_source(
            build_net(cfg),
            &Line,
            &mut source,
            &mut sink,
            RunOptions::default(),
            |d| {
                delivery_digest.fold(d.packet.id.0);
                delivery_digest.fold(d.delivered_at.as_nanos());
                if d.packet.is_regular() {
                    truth_sum += d.true_delay().as_nanos();
                    truth_n += 1;
                }
            },
        )
    };
    digest.fold(delivery_digest.value());

    let mut report = plane.finish();
    let tap = report.taps.pop().expect("replay tap");
    let est_mean_ns = tap.report.flows.aggregate_est_mean().unwrap_or(f64::NAN);

    StreamedRun {
        stats,
        digest: digest.value(),
        truth_sum,
        truth_n,
        capture: pair.finish(),
        est_mean_ns,
        epochs: tap.report.epochs,
        records_read: source.inner().records_read(),
        replayed: source.inner().emitted(),
        late_dropped: source.inner().late_dropped(),
        peak_buffered: source.inner().peak_buffered(),
        refs_emitted: source.sender().refs_emitted(),
    }
}

/// The oracle replay: drain the same source through the same interleave
/// into a `Vec`, hand it to the legacy collect-then-sort ingest, digest
/// the identical observable stream.
fn replay_vec<R: Read>(cfg: &ReplayConfig, records: PcapRecords<R>, entry: EntryMap) -> u64 {
    let pcap = PcapReplaySource::new(records, entry, cfg.reorder_ns);
    let pcap = if cfg.lenient { pcap.lenient() } else { pcap };
    let mut source = RefInterleave::new(pcap, mk_sender(cfg), S0);
    let mut injections: Vec<(NodeId, Packet)> = Vec::new();
    while source.peek().is_some() {
        injections.push(source.next_injection().expect("peeked non-empty"));
    }
    let mut digest = StreamDigest::default();
    let mut delivery_digest = StreamDigest::default();
    run_network_streamed(build_net(cfg), &Line, injections, &mut digest, |d| {
        delivery_digest.fold(d.packet.id.0);
        delivery_digest.fold(d.delivered_at.as_nanos());
    });
    digest.fold(delivery_digest.value());
    digest.value()
}

/// Mean capture latency over regular-traffic flows (the reference flow is
/// also matched by the pair; it is not part of the workload under
/// measurement).
fn capture_mean_regular_ns(report: &CaptureReport) -> f64 {
    let rk = ref_key();
    let (count, sum) = report
        .flows
        .iter()
        .filter(|(k, _)| *k != rk)
        .fold((0u64, 0u64), |(c, s), (_, f)| (c + f.count, s + f.sum_ns));
    if count == 0 {
        f64::NAN
    } else {
        sum as f64 / count as f64
    }
}

/// The replay as a [`Scenario`]: a single point (the capture).
pub struct ReplayScenario<'a> {
    cfg: &'a ReplayConfig,
}

impl<'a> ReplayScenario<'a> {
    /// Build from configuration.
    pub fn new(cfg: &'a ReplayConfig) -> Self {
        ReplayScenario { cfg }
    }
}

impl Scenario for ReplayScenario<'_> {
    type Point = u64;
    type Outcome = ReplayOutcome;
    type Aggregate = ReplayOutcome;

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn points(&self) -> Vec<u64> {
        vec![0]
    }

    fn run_point(&self, _ctx: &PointContext, _point: &u64) -> ReplayOutcome {
        let cfg = self.cfg;
        let entry = EntryMap::parse(&cfg.entry_spec)
            .unwrap_or_else(|e| panic!("invalid entry-map spec: {e}"));

        let open_file = |path: &PathBuf| {
            rlir_trace::open_pcap(path)
                .unwrap_or_else(|e| panic!("cannot open trace {}: {e:?}", path.display()))
        };

        let (run, vec_digest) = match &cfg.trace_path {
            Some(path) => {
                let run = replay_streamed(cfg, open_file(path), entry.clone());
                let vec_digest = cfg
                    .verify_vs_vec
                    .then(|| replay_vec(cfg, open_file(path), entry));
                (run, vec_digest)
            }
            None => {
                let bytes = synth_capture(cfg);
                let run = replay_streamed(
                    cfg,
                    PcapRecords::new(bytes.as_slice()).expect("fresh capture"),
                    entry.clone(),
                );
                let vec_digest = cfg.verify_vs_vec.then(|| {
                    replay_vec(
                        cfg,
                        PcapRecords::new(bytes.as_slice()).expect("fresh capture"),
                        entry,
                    )
                });
                (run, vec_digest)
            }
        };

        let truth_mean_ns = if run.truth_n == 0 {
            f64::NAN
        } else {
            run.truth_sum as f64 / run.truth_n as f64
        };
        let capture_mean_ns = capture_mean_regular_ns(&run.capture);
        ReplayOutcome {
            generated_fallback: cfg.trace_path.is_none(),
            records_read: run.records_read,
            replayed: run.replayed,
            late_dropped: run.late_dropped,
            source_peak_buffered: run.peak_buffered,
            refs_emitted: run.refs_emitted,
            delivered: run.stats.delivered,
            events: run.stats.events,
            peak_live_slots: run.stats.peak_live_slots,
            capture_matched: run.capture.matched,
            capture_expired: run.capture.expired,
            capture_peak_pending: run.capture.peak_pending,
            capture_mean_ns,
            truth_mean_ns,
            capture_vs_truth_rel_err: rlir_stats::relative_error(capture_mean_ns, truth_mean_ns),
            rli_est_mean_ns: run.est_mean_ns,
            rli_vs_capture_rel_err: rlir_stats::relative_error(run.est_mean_ns, capture_mean_ns),
            ingest_identical: vec_digest.map(|d| d == run.digest),
            epochs: run.epochs,
        }
    }

    fn aggregate(&self, mut outcomes: impl Iterator<Item = ReplayOutcome>) -> ReplayOutcome {
        outcomes.next().expect("single-point scenario")
    }
}

/// Run a replay through the shared executor.
pub fn run_replay(cfg: &ReplayConfig, runner: &SweepRunner) -> ReplayOutcome {
    runner.run(&ReplayScenario::new(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ReplayConfig {
        ReplayConfig::paper(47, SimDuration::from_millis(20))
    }

    #[test]
    fn fallback_replay_streams_and_matches_the_vec_oracle() {
        let out = run_replay(&quick_cfg(), &SweepRunner::single());
        assert!(out.generated_fallback);
        assert!(out.records_read > 1_000, "records {}", out.records_read);
        assert_eq!(out.replayed, out.records_read, "sorted capture sheds none");
        assert_eq!(out.late_dropped, 0);
        assert!(out.refs_emitted > 0);
        assert_eq!(
            out.ingest_identical,
            Some(true),
            "streamed ingest must be byte-identical to the Vec oracle"
        );
        // The whole capture streamed through a buffer of a couple of
        // records — O(buffer), not O(run).
        assert!(
            out.source_peak_buffered <= 2,
            "ingest buffered {} records",
            out.source_peak_buffered
        );
    }

    #[test]
    fn capture_pair_is_faithful_and_rli_tracks_it() {
        let out = run_replay(&quick_cfg(), &SweepRunner::single());
        // The external instrument agrees with the engine's internal truth
        // on the tandem (same packets, same endpoints).
        assert!(
            out.capture_vs_truth_rel_err < 1e-9,
            "capture vs truth {}",
            out.capture_vs_truth_rel_err
        );
        assert!(out.capture_matched > 1_000);
        // And the RLI estimate is accurate when judged by that external
        // truth, not only by simulator-internal state.
        assert!(
            out.rli_vs_capture_rel_err < 0.25,
            "rli vs capture {}",
            out.rli_vs_capture_rel_err
        );
        assert!(!out.epochs.is_empty());
    }

    #[test]
    fn explicit_trace_path_is_replayed() {
        let cfg = quick_cfg();
        let bytes = synth_capture(&cfg);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("rlir-replay-test-{}.pcap", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mut cfg2 = cfg.clone();
        cfg2.trace_path = Some(path.clone());
        let from_file = run_replay(&cfg2, &SweepRunner::single());
        let fallback = run_replay(&cfg, &SweepRunner::single());
        std::fs::remove_file(&path).ok();
        assert!(!from_file.generated_fallback);
        // Same capture bytes, same scenario: identical replay.
        assert_eq!(from_file.records_read, fallback.records_read);
        assert_eq!(from_file.delivered, fallback.delivered);
        assert_eq!(
            from_file.capture_mean_ns.to_bits(),
            fallback.capture_mean_ns.to_bits()
        );
        assert_eq!(from_file.ingest_identical, Some(true));
    }

    #[test]
    fn ref_interleave_matches_materialized_idiom() {
        // Drain the wrapper and rebuild the same stream the Vec idiom
        // produces; they must agree element for element.
        let cfg = quick_cfg();
        let bytes = synth_capture(&cfg);
        let entry = EntryMap::Fixed(S0);
        let pcap = PcapReplaySource::new(PcapRecords::new(bytes.as_slice()).unwrap(), entry, 0);
        let mut wrapped = RefInterleave::new(pcap, mk_sender(&cfg), S0);
        let mut streamed = Vec::new();
        while wrapped.peek().is_some() {
            streamed.push(wrapped.next_injection().unwrap());
        }

        let mut materialized = Vec::new();
        let mut sender = mk_sender(&cfg);
        let mut pcap2 = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).unwrap(),
            EntryMap::Fixed(S0),
            0,
        );
        while let Some((node, p)) = pcap2.next_injection() {
            for r in sender.observe(&p) {
                materialized.push((S0, *r));
            }
            materialized.push((node, p));
        }
        assert_eq!(streamed.len(), materialized.len());
        for (a, b) in streamed.iter().zip(&materialized) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1.id, b.1.id);
            assert_eq!(a.1.created_at, b.1.created_at);
            assert_eq!(a.1.kind, b.1.kind);
        }
    }
}
