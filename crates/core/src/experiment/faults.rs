//! Closed-loop fault detection sweep — **time-to-localize** as a
//! first-class metric.
//!
//! The localization sweep injects its anomaly at t = 0 and asks "where"
//! after the run. This sweep is the continuous-operation counterpart: a
//! scripted service-time degradation switches **on mid-run** at a swept
//! onset time, the online [`EpochDetector`](crate::detect::EpochDetector)
//! watches the measurement plane as epochs settle, and the first alarm
//! halts the engine through the stop-flag hook. What gets reported is the
//! operator's quantity: how long after the fault appeared was it localized
//! (detection watermark − onset), at what false-positive rate, as
//! background load — and with it the anomaly's relative severity — varies.
//!
//! The victim is drawn per trial from the same measured core/edge pool as
//! the localization sweep, and a detection is *correct* when the flagged
//! segment's path traverses the victim (the deployment's localization
//! granularity). An alarm that fires before the onset is a false positive.

use super::fattree::{run_fattree_faulted, FatTreeExpConfig};
use super::localize::{expected_segments, victim_pool};
use crate::detect::DetectorConfig;
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::time::SimDuration;
use rlir_sim::{FaultEvent, FaultKind, FaultScript};
use rlir_topo::FatTree;
use serde::{Deserialize, Serialize};

/// Configuration of the closed-loop fault sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsConfig {
    /// Base fat-tree experiment; `seed` and `background_load` are
    /// overridden per point.
    pub base: FatTreeExpConfig,
    /// Sweep points: background utilization per non-measured ToR.
    pub utilizations: Vec<f64>,
    /// Sweep points: fault onset times into the run.
    pub onsets: Vec<SimDuration>,
    /// Victim draws per (utilization, onset) point.
    pub trials: usize,
    /// Degradation magnitude (extra per-packet processing at the victim
    /// while the fault is active).
    pub extra_processing: SimDuration,
    /// Online detector configuration.
    pub detector: DetectorConfig,
}

impl FaultsConfig {
    /// Defaults: the k = 4 paper fabric with 1 ms epochs, a 400 µs
    /// degradation switching on at two onsets, idle and busy background.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        let mut base = FatTreeExpConfig::paper(seed, duration);
        // Online detection wants epochs much shorter than the run; 1 ms
        // keeps several settled epochs ahead of every swept onset.
        base.epoch = Some(SimDuration::from_millis(1));
        FaultsConfig {
            base,
            utilizations: vec![0.05, 0.25],
            onsets: vec![SimDuration::from_millis(4), SimDuration::from_millis(8)],
            trials: 2,
            extra_processing: SimDuration::from_micros(400),
            detector: DetectorConfig::default(),
        }
    }
}

/// Outcome of one victim trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsTrial {
    /// Background utilization of this trial's point.
    pub utilization: f64,
    /// Fault onset, ns into the run.
    pub onset_ns: u64,
    /// Name of the afflicted switch.
    pub victim: String,
    /// Name of the flagged segment (`None`: the detector never fired).
    pub flagged: Option<String>,
    /// Whether the flagged segment's path traverses the victim.
    pub correct: bool,
    /// The alarm fired **before** the onset — a false positive.
    pub false_positive: bool,
    /// Time-to-localize: detection watermark − onset, ns (`None` unless a
    /// post-onset detection fired).
    pub ttl_ns: Option<u64>,
    /// CUSUM score at the alarm (`NaN` without one).
    pub score: f64,
    /// Engine events processed before the run halted (detection truncates
    /// the run — that is the closed loop working).
    pub events: u64,
}

/// Per-(utilization, onset) aggregate of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsPoint {
    /// Background utilization.
    pub utilization: f64,
    /// Fault onset, ns into the run.
    pub onset_ns: u64,
    /// Victim trials at this point.
    pub trials: usize,
    /// Trials with a post-onset detection.
    pub detected: usize,
    /// Detections whose flagged segment traverses the victim.
    pub correct: usize,
    /// Trials whose alarm fired before the onset.
    pub false_positives: usize,
    /// Mean time-to-localize over detected trials, ns (`NaN` if none).
    pub mean_ttl_ns: f64,
}

/// The sweep as a [`Scenario`]: `utilizations × onsets × trials` points,
/// victim drawn per point from the derived seed (thread-count invariant,
/// like every sweep here).
pub struct FaultsSweep<'a> {
    cfg: &'a FaultsConfig,
}

impl<'a> FaultsSweep<'a> {
    /// Build from configuration.
    pub fn new(cfg: &'a FaultsConfig) -> Self {
        FaultsSweep { cfg }
    }
}

impl Scenario for FaultsSweep<'_> {
    type Point = (f64, u64, usize);
    type Outcome = FaultsTrial;
    type Aggregate = Vec<FaultsPoint>;

    fn seed(&self) -> u64 {
        self.cfg.base.seed
    }

    fn points(&self) -> Vec<(f64, u64, usize)> {
        self.cfg
            .utilizations
            .iter()
            .flat_map(|&u| {
                self.cfg
                    .onsets
                    .iter()
                    .flat_map(move |&o| (0..self.cfg.trials).map(move |t| (u, o.as_nanos(), t)))
            })
            .collect()
    }

    fn run_point(
        &self,
        ctx: &PointContext,
        &(utilization, onset_ns, _trial): &(f64, u64, usize),
    ) -> FaultsTrial {
        let mut cfg = self.cfg.base.clone();
        cfg.seed = ctx.seed; // fresh workload per trial, seed-derived
        cfg.background_load = utilization;
        let tree = FatTree::new(cfg.k, cfg.hash);
        let pool = victim_pool(&cfg, &tree);
        // Victim draw: one multiplicative hash step of the derived seed —
        // deterministic in (config, point index), independent of threads.
        let draw = (ctx.seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize;
        let victim = pool[draw % pool.len()];
        let onset = rlir_net::time::SimTime::from_nanos(onset_ns);
        let script = FaultScript::new(vec![FaultEvent {
            at: onset,
            kind: FaultKind::SlowSwitch {
                node: victim,
                extra: self.cfg.extra_processing,
            },
        }]);

        let run = run_fattree_faulted(&cfg, Some(&script), Some(&self.cfg.detector));
        let expected = expected_segments(&cfg, &tree, victim);
        let detection = run.detection;
        let false_positive = detection
            .as_ref()
            .is_some_and(|d| d.at.as_nanos() < onset_ns);
        let post_onset = detection.as_ref().filter(|d| d.at.as_nanos() >= onset_ns);
        FaultsTrial {
            utilization,
            onset_ns,
            victim: tree.node(victim).name.clone(),
            flagged: detection.as_ref().map(|d| d.name.clone()),
            correct: post_onset.is_some_and(|d| expected.contains(&d.name)),
            false_positive,
            ttl_ns: post_onset.map(|d| d.at.as_nanos() - onset_ns),
            score: detection.as_ref().map_or(f64::NAN, |d| d.score),
            events: run.events,
        }
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = FaultsTrial>) -> Vec<FaultsPoint> {
        let mut points: Vec<FaultsPoint> = Vec::new();
        let mut ttl_sum = 0.0f64;
        for trial in outcomes {
            // Outcomes arrive in point order: trials of one
            // (utilization, onset) cell are contiguous.
            let same = points.last().is_some_and(|p| {
                p.utilization == trial.utilization && p.onset_ns == trial.onset_ns
            });
            if !same {
                ttl_sum = 0.0;
                points.push(FaultsPoint {
                    utilization: trial.utilization,
                    onset_ns: trial.onset_ns,
                    trials: 0,
                    detected: 0,
                    correct: 0,
                    false_positives: 0,
                    mean_ttl_ns: f64::NAN,
                });
            }
            let p = points.last_mut().expect("just ensured");
            p.trials += 1;
            if trial.false_positive {
                p.false_positives += 1;
            }
            if let Some(ttl) = trial.ttl_ns {
                p.detected += 1;
                ttl_sum += ttl as f64;
                p.mean_ttl_ns = ttl_sum / p.detected as f64;
            }
            if trial.correct {
                p.correct += 1;
            }
        }
        points
    }
}

/// Run the closed-loop fault sweep through the shared executor.
pub fn run_faults(cfg: &FaultsConfig, runner: &SweepRunner) -> Vec<FaultsPoint> {
    runner.run(&FaultsSweep::new(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_rli::PolicyKind;

    fn quick_cfg() -> FaultsConfig {
        let mut cfg = FaultsConfig::paper(29, SimDuration::from_millis(30));
        cfg.base.policy = PolicyKind::Static { n: 30 };
        cfg.utilizations = vec![0.05];
        cfg.onsets = vec![SimDuration::from_millis(5)];
        cfg.trials = 2;
        cfg
    }

    #[test]
    fn detects_mid_run_degradation_with_bounded_delay() {
        let pts = run_faults(&quick_cfg(), &SweepRunner::single());
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert_eq!(p.trials, 2);
        // A 400 µs degradation at calm load towers over the baseline:
        // every trial must detect it, after the onset, on a segment
        // traversing the victim.
        assert_eq!(p.detected, p.trials, "missed detections");
        assert_eq!(p.correct, p.detected, "wrong segment flagged");
        assert_eq!(p.false_positives, 0);
        // Online bound: epochs settle two reorder windows (8 ms) behind
        // the watermark, so TTL is the settling lag plus a few epochs —
        // and must stay well inside the run.
        assert!(p.mean_ttl_ns.is_finite());
        assert!(
            p.mean_ttl_ns < 20_000_000.0,
            "TTL {} ns not online",
            p.mean_ttl_ns
        );
    }

    #[test]
    fn detection_truncates_the_run() {
        let cfg = quick_cfg();
        let mut base = cfg.base.clone();
        base.background_load = 0.05;
        let tree = FatTree::new(base.k, base.hash);
        let victim = victim_pool(&base, &tree)[0];
        let script = FaultScript::new(vec![FaultEvent {
            at: rlir_net::time::SimTime::from_nanos(5_000_000),
            kind: FaultKind::SlowSwitch {
                node: victim,
                extra: cfg.extra_processing,
            },
        }]);
        // Same faulted run with and without the closed loop: the stop
        // flag must really halt the engine mid-run.
        let open = run_fattree_faulted(&base, Some(&script), None);
        let closed = run_fattree_faulted(&base, Some(&script), Some(&cfg.detector));
        assert!(open.detection.is_none());
        let d = closed.detection.expect("the 400 µs fault must be detected");
        assert!(d.at.as_nanos() >= 5_000_000);
        assert!(
            closed.events < open.events,
            "closed {} vs open {}: detection must truncate the run",
            closed.events,
            open.events
        );
    }

    #[test]
    fn thread_count_invariant() {
        let cfg = quick_cfg();
        let a = run_faults(&cfg, &SweepRunner::single());
        let b = run_faults(&cfg, &SweepRunner::new(2));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.detected, y.detected);
            assert_eq!(x.correct, y.correct);
            assert_eq!(x.mean_ttl_ns.to_bits(), y.mean_ttl_ns.to_bits());
        }
    }
}
