//! Drop-aware estimation on a loss-heavy path — what a **live** RLI
//! instance sees that a delivered-gated evaluation cannot.
//!
//! The paper's accuracy methodology scores a tap's estimates only on
//! packets that ultimately exit the network. A device-resident instance
//! has no such luxury: it meters everything that crosses its point,
//! including packets that die downstream moments later. Those packets are
//! not a random sample — drop-tail kills exactly the packets that arrive
//! during the deepest backlogs, which is also when the *measured* segment
//! runs slowest — so the delivered-only view is survivor-biased.
//!
//! This scenario quantifies that bias. Topology: `S0 → S1 → host`, with
//! the loss concentrated at S1 (half the rate of S0, a shallow buffer).
//! Two taps sit at the *same* observation point, S0's egress port:
//!
//! * `live` — the deployment default: ordered streaming feed from the
//!   dequeue events, meters every crossing, counts downstream deaths per
//!   epoch ([`rlir_rli::EpochSnapshot::dropped_after_metering`]);
//! * `delivered` — the paper's evaluation gate at the same point, its
//!   observations reconstructed from delivery records (and therefore fed
//!   through the plane's bounded reorder window).
//!
//! The sweep raises offered load through and past the bottleneck's
//! capacity and reports, per point: the realised loss split by where it
//! happened, how many metered packets died after metering, and the
//! estimated/true segment means under both views. The gap between the two
//! true means *is* the survivor bias; the live estimator's error against
//! its own (complete) truth shows RLI keeps working while packets die
//! downstream.

use crate::plane::{MeasurementPlane, PlaneConfig, TapPoint, TapSpec, TruthRef};
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::SimDuration;
use rlir_net::FlowKey;
use rlir_rli::{EpochSnapshot, PolicyKind, RliSender};
use rlir_sim::{
    run_network_streamed, Forwarder, Network, NodeId, Port, QueueConfig, RouteDecision,
};
use rlir_trace::{generate, TraceConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the drop-aware sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DropAwareConfig {
    /// Master seed (per-point trace seeds are derived).
    pub seed: u64,
    /// Trace duration per point.
    pub duration: SimDuration,
    /// Injection policy of the sender at S0.
    pub policy: PolicyKind,
    /// Sweep points: offered load as a fraction of the *bottleneck* (S1)
    /// rate. Values at and above 1.0 drive sustained loss.
    pub offered_loads: Vec<f64>,
    /// Ingress switch (S0) queue — the measured segment's delay source.
    pub ingress_queue: QueueConfig,
    /// Bottleneck switch (S1) queue — where metered packets die.
    pub bottleneck_queue: QueueConfig,
    /// Link delay S0 → S1 and S1 → host.
    pub link_delay: SimDuration,
    /// Epoch width of the measurement plane.
    pub epoch: Option<SimDuration>,
    /// Flows with fewer estimated packets are excluded from error stats.
    pub min_flow_packets: u64,
}

impl DropAwareConfig {
    /// Defaults: a 10 Gb/s ingress feeding a 5 Gb/s bottleneck with a
    /// shallow 64 KiB buffer, load swept from calm through overload.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        DropAwareConfig {
            seed,
            duration,
            policy: PolicyKind::Static { n: 100 },
            offered_loads: vec![0.5, 0.8, 0.95, 1.1],
            ingress_queue: QueueConfig {
                rate_bps: 10_000_000_000,
                capacity_bytes: 512 * 1024,
                processing_delay: SimDuration::from_micros(1),
            },
            bottleneck_queue: QueueConfig {
                rate_bps: 5_000_000_000,
                capacity_bytes: 64 * 1024,
                processing_delay: SimDuration::from_micros(1),
            },
            link_delay: SimDuration::from_micros(1),
            epoch: Some(SimDuration::from_millis(5)),
            min_flow_packets: 1,
        }
    }
}

/// One point of the drop-aware sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DropAwarePoint {
    /// Offered load, as a fraction of the bottleneck rate.
    pub offered_load: f64,
    /// Regular packets offered at S0.
    pub offered: u64,
    /// Regular-packet loss at the bottleneck (downstream of the tap).
    pub downstream_loss: f64,
    /// Regular-packet loss at the ingress queue (upstream of the tap —
    /// those packets were never metered).
    pub upstream_loss: f64,
    /// Live tap: regular packets metered.
    pub live_metered: u64,
    /// Live tap: metered packets that died downstream after metering.
    pub dropped_after_metering: u64,
    /// Live tap: estimated segment mean, ns (all crossings).
    pub live_est_mean_ns: f64,
    /// Live tap: true segment mean, ns (all crossings).
    pub live_true_mean_ns: f64,
    /// Delivered-gated tap at the same point: estimated mean, ns.
    pub delivered_est_mean_ns: f64,
    /// Delivered-gated tap: true mean, ns (survivors only).
    pub delivered_true_mean_ns: f64,
    /// Survivor bias of the delivered-gated view:
    /// `(live_true − delivered_true) / live_true`. Positive when the dying
    /// packets crossed the segment slower than the survivors.
    pub survivor_bias: f64,
    /// Live estimator's relative error against its own complete truth.
    pub live_rel_err: f64,
    /// Live tap per-epoch series, downstream deaths included per epoch.
    pub epochs: Vec<EpochSnapshot>,
    /// Plane reorder high-water mark of the delivered-gated tap.
    pub peak_pending: usize,
}

/// `S0 → S1 → host`: forward out port 0 everywhere; S1's port is
/// host-facing, so deliveries happen after its queue (and drop-tail kills
/// there).
struct Line;
impl Forwarder for Line {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

const S0: NodeId = 0;
const S1: NodeId = 1;

fn ref_key() -> FlowKey {
    FlowKey::udp(
        "10.3.255.254".parse().expect("static"),
        40_000,
        "10.200.255.254".parse().expect("static"),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

/// The sweep as a [`Scenario`]: one offered load per point.
pub struct DropAwareSweep<'a> {
    cfg: &'a DropAwareConfig,
}

impl<'a> DropAwareSweep<'a> {
    /// Build from configuration.
    pub fn new(cfg: &'a DropAwareConfig) -> Self {
        DropAwareSweep { cfg }
    }
}

impl Scenario for DropAwareSweep<'_> {
    type Point = f64;
    type Outcome = DropAwarePoint;
    type Aggregate = Vec<DropAwarePoint>;

    fn seed(&self) -> u64 {
        self.cfg.seed
    }

    fn points(&self) -> Vec<f64> {
        self.cfg.offered_loads.clone()
    }

    fn run_point(&self, ctx: &PointContext, &offered_load: &f64) -> DropAwarePoint {
        // Workload: one trace aimed at the bottleneck's rate fraction.
        let mut tc = TraceConfig::paper_regular(ctx.seed, self.cfg.duration);
        tc.link_rate_bps = self.cfg.bottleneck_queue.rate_bps;
        tc.target_utilization = offered_load;
        let trace = generate(&tc);

        let mut sender = RliSender::new(
            SenderId(1),
            ClockModel::perfect(),
            self.cfg.policy.build(),
            vec![ref_key()],
        );
        let mut injections: Vec<(NodeId, Packet)> = Vec::new();
        for p in &trace.packets {
            for r in sender.observe(p) {
                injections.push((S0, *r));
            }
            injections.push((S0, *p));
        }

        let mut net = Network::default();
        net.add_node("S0");
        net.add_node("S1");
        net.add_port(
            S0,
            Port::to_switch(self.cfg.ingress_queue, S1, self.cfg.link_delay),
        );
        net.add_port(
            S1,
            Port::to_host(self.cfg.bottleneck_queue, self.cfg.link_delay),
        );

        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            epoch: self.cfg.epoch,
            ..PlaneConfig::default()
        });
        // Live tap at S0's egress: dequeue events leave one FIFO in
        // departure order, so the feed is ordered and streams unbuffered.
        let mut live = TapSpec::new("live", TapPoint::PortDeparture(S0, 0), SenderId(1));
        live.ordered = true;
        live.truth = TruthRef::SinceInjection;
        plane.attach(live);
        // The paper's evaluation gate at the same point, for contrast.
        let mut delivered = TapSpec::new("delivered", TapPoint::PortDeparture(S0, 0), SenderId(1));
        delivered.delivered_only = true;
        delivered.truth = TruthRef::SinceInjection;
        plane.attach(delivered);

        // Plane-only scenario: the plane *is* the consumer, so run in
        // streamed-delivery mode — no `Vec<NetDelivery>` is materialised
        // and engine memory stays O(in-flight) even at overload.
        let stats = run_network_streamed(net, &Line, injections, &mut plane, |_| {});
        let offered = trace.packets.len() as u64;
        // Loss rates are *regular-packet* rates (matching the documented
        // fields and `dropped_after_metering`'s scope): read the per-class
        // queue counters, not the all-kinds per-node drop totals, so dying
        // references don't inflate them.
        let s0_drops = stats.network.nodes[S0].ports[0].queue.regular().drops;
        let s1_drops = stats.network.nodes[S1].ports[0].queue.regular().drops;

        let mut report = plane.finish();
        let delivered_rep = report.taps.pop().expect("delivered tap");
        let live_rep = report.taps.pop().expect("live tap");

        let live_est = live_rep
            .report
            .flows
            .aggregate_est_mean()
            .unwrap_or(f64::NAN);
        let live_true = live_rep
            .report
            .flows
            .aggregate_true_mean()
            .unwrap_or(f64::NAN);
        let del_est = delivered_rep
            .report
            .flows
            .aggregate_est_mean()
            .unwrap_or(f64::NAN);
        let del_true = delivered_rep
            .report
            .flows
            .aggregate_true_mean()
            .unwrap_or(f64::NAN);
        DropAwarePoint {
            offered_load,
            offered,
            downstream_loss: s1_drops as f64 / offered.max(1) as f64,
            upstream_loss: s0_drops as f64 / offered.max(1) as f64,
            live_metered: live_rep.report.counters.regulars_seen,
            dropped_after_metering: live_rep.dropped_metered,
            live_est_mean_ns: live_est,
            live_true_mean_ns: live_true,
            delivered_est_mean_ns: del_est,
            delivered_true_mean_ns: del_true,
            survivor_bias: (live_true - del_true) / live_true,
            live_rel_err: rlir_stats::relative_error(live_est, live_true),
            epochs: live_rep.report.epochs,
            peak_pending: delivered_rep.peak_pending,
        }
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = DropAwarePoint>) -> Vec<DropAwarePoint> {
        outcomes.collect()
    }
}

/// Run the drop-aware sweep through the shared executor.
pub fn run_drop_aware(cfg: &DropAwareConfig, runner: &SweepRunner) -> Vec<DropAwarePoint> {
    runner.run(&DropAwareSweep::new(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> DropAwareConfig {
        let mut cfg = DropAwareConfig::paper(31, SimDuration::from_millis(40));
        cfg.policy = PolicyKind::Static { n: 50 };
        cfg.offered_loads = vec![0.5, 1.1];
        cfg
    }

    #[test]
    fn overload_kills_metered_packets_downstream() {
        let pts = run_drop_aware(&quick_cfg(), &SweepRunner::single());
        assert_eq!(pts.len(), 2);
        let (calm, hot) = (&pts[0], &pts[1]);
        assert!(
            calm.downstream_loss < 0.01,
            "calm loss {}",
            calm.downstream_loss
        );
        assert_eq!(calm.dropped_after_metering, 0);
        assert!(
            hot.downstream_loss > 0.03,
            "hot loss {}",
            hot.downstream_loss
        );
        // Every downstream death was metered first — the tap sits upstream
        // of the fatal queue and meters every crossing.
        assert!(
            hot.dropped_after_metering > 0,
            "live tap must count downstream deaths"
        );
        assert!(hot.live_metered > calm.live_metered / 2);
        // The per-epoch series carries the deaths.
        let per_epoch: u64 = hot.epochs.iter().map(|e| e.dropped_after_metering).sum();
        assert_eq!(per_epoch, hot.dropped_after_metering, "epochs must tally");
    }

    #[test]
    fn live_view_sees_what_the_delivered_gate_misses() {
        let pts = run_drop_aware(&quick_cfg(), &SweepRunner::single());
        let hot = &pts[1];
        // The delivered-gated tap scores survivors only; the live tap
        // additionally scores the packets that died at the bottleneck.
        assert!(
            hot.live_metered
                > hot.offered - hot.dropped_after_metering.min(hot.offered) - hot.live_metered / 10,
            "live tap must meter ~every crossing: {} of {}",
            hot.live_metered,
            hot.offered
        );
        assert!(hot.dropped_after_metering > 0);
        // RLI still estimates accurately against its own complete truth.
        assert!(
            hot.live_rel_err < 0.25,
            "live estimator error {}",
            hot.live_rel_err
        );
        assert!(hot.survivor_bias.is_finite());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick_cfg();
        let a = run_drop_aware(&cfg, &SweepRunner::single());
        let b = run_drop_aware(&cfg, &SweepRunner::new(2));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.live_est_mean_ns.to_bits(), y.live_est_mean_ns.to_bits());
            assert_eq!(x.dropped_after_metering, y.dropped_after_metering);
            assert_eq!(x.live_metered, y.live_metered);
        }
    }
}
