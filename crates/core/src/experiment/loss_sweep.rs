//! Reference-packet interference sweep (the paper's Fig. 5).
//!
//! "Figure 5 shows packet loss increase (difference) caused by reference
//! packets." For each bottleneck-utilization point the sweep runs the
//! two-hop pipeline twice with identical seeds — once with reference
//! injection, once without — and reports the difference in end-to-end
//! regular-packet loss rate. The sweep is a [`Scenario`] executed by the
//! shared [`SweepRunner`]; each pair shares the same base traces (mirroring
//! the paper's reuse of one trace across utilization settings) while the
//! cross-traffic injector of each point draws from its own derived seed.

use super::two_hop::{run_two_hop_on, CrossSpec, TwoHopConfig};
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_rli::PolicyKind;
use rlir_trace::{generate, Trace};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 5 series.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LossPoint {
    /// Target bottleneck utilization of this point.
    pub target_utilization: f64,
    /// Realised utilization (with references injected).
    pub utilization: f64,
    /// Regular-packet loss rate *with* reference injection.
    pub loss_with_refs: f64,
    /// Regular-packet loss rate *without* reference injection.
    pub loss_without_refs: f64,
    /// Reference packets emitted.
    pub refs_emitted: u64,
}

impl LossPoint {
    /// The quantity Fig. 5 plots: loss-rate increase caused by references.
    pub fn loss_difference(&self) -> f64 {
        self.loss_with_refs - self.loss_without_refs
    }
}

/// Sweep configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LossSweepConfig {
    /// The base run configuration (policy is per-sweep; the cross spec's
    /// target is overridden per point).
    pub base: TwoHopConfig,
    /// Utilization points (paper: 0.82 … 0.98).
    pub targets: Vec<f64>,
}

impl LossSweepConfig {
    /// The paper's x-axis: 0.82..=0.98 in steps of 0.02.
    pub fn paper_targets() -> Vec<f64> {
        (0..9).map(|i| 0.82 + 0.02 * i as f64).collect()
    }

    /// Build a sweep for the given policy over the paper's target range.
    pub fn paper(policy: PolicyKind, base: TwoHopConfig) -> Self {
        LossSweepConfig {
            base: TwoHopConfig { policy, ..base },
            targets: Self::paper_targets(),
        }
    }
}

/// The Fig. 5 sweep as a [`Scenario`]: one target-utilization point per
/// sweep point, a with/without-references pair per `run_point`.
pub struct LossSweep<'a> {
    cfg: &'a LossSweepConfig,
    regular: &'a Trace,
    cross: &'a Trace,
}

impl<'a> LossSweep<'a> {
    /// A sweep over pre-generated base traces.
    pub fn new(cfg: &'a LossSweepConfig, regular: &'a Trace, cross: &'a Trace) -> Self {
        LossSweep {
            cfg,
            regular,
            cross,
        }
    }
}

impl Scenario for LossSweep<'_> {
    type Point = f64;
    type Outcome = LossPoint;
    type Aggregate = Vec<LossPoint>;

    fn seed(&self) -> u64 {
        self.cfg.base.seed
    }

    fn points(&self) -> Vec<f64> {
        self.cfg.targets.clone()
    }

    fn run_point(&self, ctx: &PointContext, &target: &f64) -> LossPoint {
        // Both arms of the pair share the point's derived seed, so the
        // cross-traffic injector drops the *same* packets — the measured
        // difference isolates the reference packets.
        let mut with_cfg = self.cfg.base.clone();
        with_cfg.seed = ctx.seed;
        with_cfg.cross = CrossSpec::Uniform {
            target_utilization: target,
        };
        with_cfg.inject_references = true;
        let mut without_cfg = with_cfg.clone();
        without_cfg.inject_references = false;

        let with = run_two_hop_on(&with_cfg, self.regular, self.cross);
        let without = run_two_hop_on(&without_cfg, self.regular, self.cross);
        LossPoint {
            target_utilization: target,
            utilization: with.utilization,
            loss_with_refs: with.regular_loss,
            loss_without_refs: without.regular_loss,
            refs_emitted: with.refs_emitted,
        }
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = LossPoint>) -> Vec<LossPoint> {
        outcomes.collect()
    }
}

/// Run the sweep; one `LossPoint` per target utilization, in order. Traces
/// are generated from the config; the worker count comes from the
/// environment ([`SweepRunner::from_env`]).
pub fn run_loss_sweep(cfg: &LossSweepConfig) -> Vec<LossPoint> {
    // Base traces shared by all points and both arms of each pair.
    let regular = generate(&cfg.base.regular_trace());
    let cross = generate(&cfg.base.cross_trace());
    run_loss_sweep_on(cfg, &regular, &cross, &SweepRunner::from_env())
}

/// Sweep over pre-generated traces on an explicit [`SweepRunner`].
pub fn run_loss_sweep_on(
    cfg: &LossSweepConfig,
    regular: &Trace,
    cross: &Trace,
    runner: &SweepRunner,
) -> Vec<LossPoint> {
    runner.run(&LossSweep::new(cfg, regular, cross))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimDuration;

    fn small_sweep(policy: PolicyKind, targets: Vec<f64>) -> Vec<LossPoint> {
        let base = TwoHopConfig {
            policy: policy.clone(),
            ..TwoHopConfig::paper(3, SimDuration::from_millis(40))
        };
        run_loss_sweep(&LossSweepConfig { base, targets })
    }

    #[test]
    fn sweep_returns_points_in_order() {
        let pts = small_sweep(PolicyKind::Static { n: 100 }, vec![0.7, 0.9]);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].target_utilization < pts[1].target_utilization);
        assert!(pts[0].utilization < pts[1].utilization);
    }

    #[test]
    fn paired_runs_differ_only_by_references() {
        let pts = small_sweep(PolicyKind::Static { n: 10 }, vec![0.95]);
        let p = pts[0];
        assert!(p.refs_emitted > 0);
        assert!(p.loss_with_refs >= 0.0 && p.loss_without_refs >= 0.0);
        // On a short trace the true interference effect (≲10⁻⁴, Fig. 5) is
        // below drop-timing noise, so only bound the magnitude here; the
        // sign/shape is validated by the full-length Fig. 5 experiment.
        assert!(
            p.loss_difference().abs() < 0.01,
            "loss difference {}",
            p.loss_difference()
        );
    }

    #[test]
    fn paper_targets_span_082_098() {
        let t = LossSweepConfig::paper_targets();
        assert_eq!(t.len(), 9);
        assert!((t[0] - 0.82).abs() < 1e-9);
        assert!((t[8] - 0.98).abs() < 1e-9);
    }
}
