//! RLIR on the fat-tree: the architecture of §3 end-to-end.
//!
//! Measured traffic flows from several source ToRs to one destination ToR
//! (the paper's T1 → T7) across a fabric loaded with background traffic.
//! RLIR instances are deployed per [`crate::deployment::Deployment`]: the
//! path is split into two segments at the cores, `ToR → core` and
//! `core → ToR`, each measured by its own sender/receiver pairs with the
//! receiver-side demultiplexing of §3.1.
//!
//! The experiment runs in two simulation phases: phase 1 (no references)
//! yields every core's regular-packet crossing times, from which the core
//! senders' 1-and-n injection schedules are derived; phase 2 runs the full
//! workload with all reference streams and feeds the measurement plane from
//! the delivered ground truth.
//!
//! Outputs cover the demux ablation (A1/A3: naive vs marking vs
//! reverse-ECMP association accuracy and the resulting estimation error)
//! and the per-segment observations consumed by the anomaly localizer (A5).

use crate::demux::{CoreDemux, RlirDemux};
use crate::deployment::{Deployment, CORE_SENDER_BASE};
use crate::fabric::{build_network, FatTreeFabric};
use crate::localization::SegmentObservation;
use rlir_net::clock::ClockModel;
use rlir_net::fxhash::FxHashMap;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::{FlowKey, HashAlgo};
use rlir_rli::{FlowTable, Interpolator, PolicyKind, ReceiverConfig, RliReceiver, RliSender};
use rlir_sim::{run_network, NetworkRun, QueueConfig};
use rlir_topo::{FatTree, Role, TopoId};
use serde::{Deserialize, Serialize};

/// A deliberate latency fault injected at one core (for localization).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoreAnomaly {
    /// Which core, as an ordinal into [`FatTree::cores`].
    pub core_ordinal: usize,
    /// Extra per-packet processing delay at that core.
    pub extra_processing: SimDuration,
}

/// Fat-tree experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTreeExpConfig {
    /// Fat-tree arity (the paper's Fig. 1 is k = 4).
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Base ECMP hash family.
    pub hash: HashAlgo,
    /// Number of measured source ToRs (taken from pods other than the
    /// destination's).
    pub n_src_tors: usize,
    /// Offered load per measured source ToR (fraction of an edge link).
    pub measured_load: f64,
    /// Offered load per background ToR.
    pub background_load: f64,
    /// Injection policy for every sender.
    pub policy: PolicyKind,
    /// Downstream demultiplexing strategy.
    pub demux: CoreDemux,
    /// Queue parameters of every switch port.
    pub queue: QueueConfig,
    /// Link propagation delay.
    pub link_delay: SimDuration,
    /// Optional core fault.
    pub anomaly: Option<CoreAnomaly>,
    /// Optional synchronized burst envelope applied to every *measured*
    /// source trace (the incast regime: all sources transmit in the same
    /// windows, fan-in collides at the destination's downlink).
    pub burst: Option<rlir_trace::BurstShape>,
    /// Flow filter for error CDFs.
    pub min_flow_packets: u64,
}

impl FatTreeExpConfig {
    /// Paper-flavoured defaults: k=4 fabric, static 1-and-100 senders,
    /// reverse-ECMP demux, moderate load.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        FatTreeExpConfig {
            k: 4,
            seed,
            duration,
            hash: HashAlgo::Crc32 { seed: 0xD47A },
            n_src_tors: 2,
            measured_load: 0.10,
            background_load: 0.15,
            policy: PolicyKind::Static { n: 100 },
            demux: CoreDemux::ReverseEcmp,
            queue: QueueConfig::oc192(),
            link_delay: SimDuration::from_micros(1),
            anomaly: None,
            burst: None,
            min_flow_packets: 1,
        }
    }
}

/// Outcome of one fat-tree run.
#[derive(Debug, Clone)]
pub struct FatTreeOutcome {
    /// Segment-1 (source ToR → core) per-flow table, merged over receivers.
    pub seg1_flows: FlowTable,
    /// Segment-2 (core → destination ToR) per-flow table.
    pub seg2_flows: FlowTable,
    /// Per-flow mean relative errors, segment 1.
    pub seg1_errors: Vec<f64>,
    /// Per-flow mean relative errors, segment 2.
    pub seg2_errors: Vec<f64>,
    /// Measured regular packets judged by the downstream demux.
    pub demux_total: u64,
    /// …of which associated with the *correct* core.
    pub demux_correct: u64,
    /// …of which left unassociated (always all of them under naive).
    pub demux_unassociated: u64,
    /// Per-receiver segment observations (input to the localizer).
    pub segments: Vec<SegmentObservation>,
    /// Measured regular packets delivered end-to-end.
    pub measured_delivered: u64,
    /// References emitted by ToR senders / core senders.
    pub refs_emitted: (u64, u64),
}

impl FatTreeOutcome {
    /// Fraction of judged packets associated with the correct core.
    pub fn demux_accuracy(&self) -> f64 {
        if self.demux_total == 0 {
            0.0
        } else {
            self.demux_correct as f64 / self.demux_total as f64
        }
    }
}

/// Synthetic sender id used by "mixed" (non-demultiplexed) receivers in the
/// naive ablation.
const NAIVE_ID: SenderId = SenderId(u16::MAX);

#[derive(Debug, Clone, Copy)]
enum Ev {
    Reference(ReferenceInfo),
    Regular { flow: FlowKey, truth: SimDuration },
}

#[derive(Debug, Clone, Copy)]
struct Event {
    at: SimTime,
    order: u64,
    ev: Ev,
}

fn measured_trace_cfg(
    cfg: &FatTreeExpConfig,
    tree: &FatTree,
    idx: usize,
    src: TopoId,
    dst: TopoId,
) -> rlir_trace::TraceConfig {
    let mut tc = rlir_trace::TraceConfig::paper_regular(cfg.seed ^ (idx as u64 + 1), cfg.duration);
    tc.link_rate_bps = cfg.queue.rate_bps;
    tc.target_utilization = cfg.measured_load;
    tc.src_prefix = tree.host_prefix(src);
    tc.dst_prefix = tree.host_prefix(dst);
    tc.first_packet_id = (idx as u64 + 1) << 34;
    tc
}

/// Run the experiment.
pub fn run_fattree(cfg: &FatTreeExpConfig) -> FatTreeOutcome {
    let tree = FatTree::new(cfg.k, cfg.hash);
    let half = tree.half();
    let dst_pod = cfg.k - 1;
    let dst_tor = tree.tor(dst_pod, 0);

    // Measured sources: round-robin over pods other than the destination's.
    let src_tors: Vec<TopoId> = (0..cfg.n_src_tors)
        .map(|i| tree.tor(i % (cfg.k - 1), (i / (cfg.k - 1)) % half))
        .collect();
    let deployment = Deployment::for_destination(&tree, &src_tors, dst_tor);
    let demux = RlirDemux::new(&tree, cfg.demux);

    // ---- Workload -------------------------------------------------------
    let mut injections: Vec<(usize, Packet)> = Vec::new();
    let mut measured_traces = Vec::new();
    for (i, &src) in src_tors.iter().enumerate() {
        let mut trace = rlir_trace::generate(&measured_trace_cfg(cfg, &tree, i, src, dst_tor));
        if let Some(shape) = cfg.burst {
            trace = rlir_trace::compress_into_bursts(&trace, shape);
        }
        injections.extend(trace.packets.iter().map(|p| (src, *p)));
        measured_traces.push((src, trace));
    }
    // Background: every other ToR sends to a rotated partner (never the
    // destination ToR, never a measured source as origin).
    let all_tors: Vec<TopoId> = tree.tors().collect();
    for (bi, &tor) in all_tors.iter().enumerate() {
        if tor == dst_tor || src_tors.contains(&tor) || cfg.background_load <= 0.0 {
            continue;
        }
        let partner = all_tors
            .iter()
            .copied()
            .cycle()
            .skip(bi + half + 1)
            .find(|&p| p != tor && p != dst_tor)
            .expect("some partner exists");
        let mut tc = rlir_trace::TraceConfig::paper_regular(
            cfg.seed ^ 0xBAC0 ^ (bi as u64) << 3,
            cfg.duration,
        );
        tc.link_rate_bps = cfg.queue.rate_bps;
        tc.target_utilization = cfg.background_load;
        tc.src_prefix = tree.host_prefix(tor);
        tc.dst_prefix = tree.host_prefix(partner);
        tc.first_packet_id = (0x100 + bi as u64) << 34;
        let trace = rlir_trace::generate(&tc);
        injections.extend(trace.packets.iter().map(|p| (tor, *p)));
    }

    // ---- ToR-uplink senders (computable offline: the uplink a packet
    // takes is a pure function of its flow key) --------------------------
    let mut refs_tor = 0u64;
    for (i, (src, trace)) in measured_traces.iter().enumerate() {
        let mut senders: Vec<RliSender> = (0..half)
            .map(|u| {
                let spec = deployment.tor_sender(*src, u).expect("deployed");
                RliSender::new(
                    spec.id,
                    ClockModel::perfect(),
                    cfg.policy.build(),
                    spec.targets.iter().map(|(_, k)| *k).collect(),
                )
            })
            .collect();
        let _ = i;
        for p in &trace.packets {
            let uplink = tree.node(*src).hash.select(&p.flow, half);
            for r in senders[uplink].observe(p) {
                refs_tor += 1;
                injections.push((*src, *r));
            }
        }
    }

    // ---- Simulation phases ---------------------------------------------
    let overrides: Vec<(TopoId, QueueConfig)> = cfg
        .anomaly
        .iter()
        .map(|a| {
            let core = tree
                .cores()
                .nth(a.core_ordinal)
                .expect("core ordinal in range");
            (
                core,
                QueueConfig {
                    processing_delay: cfg.queue.processing_delay + a.extra_processing,
                    ..cfg.queue
                },
            )
        })
        .collect();
    let fabric = FatTreeFabric::new(&tree, matches!(cfg.demux, CoreDemux::Marking));

    // Phase 1: derive core-crossing schedules (regular + background only,
    // ToR references included so the load matches phase 2 closely).
    let phase1 = run_network(
        build_network(&tree, cfg.queue, cfg.link_delay, &overrides),
        &fabric,
        injections.clone(),
    );
    let mut crossings: FxHashMap<TopoId, Vec<(SimTime, u32)>> = FxHashMap::default();
    for d in &phase1.deliveries {
        if !d.packet.is_regular() {
            continue;
        }
        for h in &d.hops {
            if matches!(tree.node(h.node).role, Role::Core { .. }) {
                crossings
                    .entry(h.node)
                    .or_default()
                    .push((h.arrived, d.packet.size));
            }
        }
    }

    // Core senders: replay each core's crossing sequence through the policy.
    let mut refs_core = 0u64;
    for spec in &deployment.core_senders {
        let mut sender = RliSender::new(
            spec.id,
            ClockModel::perfect(),
            cfg.policy.build(),
            vec![spec.target],
        );
        let Some(seq) = crossings.get_mut(&spec.core) else {
            continue;
        };
        seq.sort_unstable();
        for &(at, size) in seq.iter() {
            let proxy = Packet::regular(0, spec.target, size, at);
            for r in sender.observe(&proxy) {
                refs_core += 1;
                injections.push((spec.core, *r));
            }
        }
    }

    // Phase 2: the full run.
    let phase2 = run_network(
        build_network(&tree, cfg.queue, cfg.link_delay, &overrides),
        &fabric,
        injections,
    );

    extract_measurements(
        cfg,
        &tree,
        &deployment,
        &demux,
        &phase2,
        (refs_tor, refs_core),
    )
}

fn extract_measurements(
    cfg: &FatTreeExpConfig,
    tree: &FatTree,
    deployment: &Deployment,
    demux: &RlirDemux<'_>,
    run: &NetworkRun,
    refs_emitted: (u64, u64),
) -> FatTreeOutcome {
    let dst_tor = deployment.dst_tor;
    let measured_src = |flow: &FlowKey| {
        demux
            .origin_tor(&Packet::regular(0, *flow, 0, SimTime::ZERO))
            .filter(|t| deployment.src_tors.contains(t))
    };
    let naive = matches!(cfg.demux, CoreDemux::Naive);

    // Event queues per receiver.
    let mut seg1: FxHashMap<(TopoId, SenderId), Vec<Event>> = FxHashMap::default();
    let mut seg2: FxHashMap<SenderId, Vec<Event>> = FxHashMap::default();
    let mut demux_total = 0u64;
    let mut demux_correct = 0u64;
    let mut demux_unassociated = 0u64;
    let mut measured_delivered = 0u64;

    for (order, d) in run.deliveries.iter().enumerate() {
        let order = order as u64;
        match d.packet.reference_info() {
            Some(info) if info.sender.0 < CORE_SENDER_BASE => {
                // ToR-sender reference: received at the core it crosses.
                if let Some(h) = d
                    .hops
                    .iter()
                    .find(|h| matches!(tree.node(h.node).role, Role::Core { .. }))
                {
                    let key = if naive { NAIVE_ID } else { info.sender };
                    let info = if naive {
                        ReferenceInfo {
                            sender: NAIVE_ID,
                            ..*info
                        }
                    } else {
                        *info
                    };
                    seg1.entry((h.node, key)).or_default().push(Event {
                        at: h.arrived,
                        order,
                        ev: Ev::Reference(info),
                    });
                }
            }
            Some(info) => {
                // Core-sender reference: received at the destination ToR.
                if d.delivered_node == dst_tor {
                    let key = if naive { NAIVE_ID } else { info.sender };
                    let info = if naive {
                        ReferenceInfo {
                            sender: NAIVE_ID,
                            ..*info
                        }
                    } else {
                        *info
                    };
                    seg2.entry(key).or_default().push(Event {
                        at: d.delivered_at,
                        order,
                        ev: Ev::Reference(info),
                    });
                }
            }
            None => {
                // Regular packet: measured iff from a measured ToR to the
                // destination block.
                if d.delivered_node != dst_tor || !d.packet.is_regular() {
                    continue;
                }
                let Some(origin) = measured_src(&d.packet.flow) else {
                    continue;
                };
                let Some(core_hop) = d
                    .hops
                    .iter()
                    .find(|h| matches!(tree.node(h.node).role, Role::Core { .. }))
                else {
                    continue; // intra-pod: not covered by this deployment
                };
                measured_delivered += 1;
                let actual_core = core_hop.node;

                // Segment 1 (origin ToR → core): the receiver at the actual
                // core physically sees the packet; association picks the
                // reference stream (upstream demux via prefix matching).
                let seg1_truth = core_hop.arrived.saturating_since(d.injected_at);
                let seg1_key = if naive {
                    Some(NAIVE_ID)
                } else {
                    deployment.tor_sender_for(tree, origin, actual_core)
                };
                if let Some(k) = seg1_key {
                    seg1.entry((actual_core, k)).or_default().push(Event {
                        at: core_hop.arrived,
                        order,
                        ev: Ev::Regular {
                            flow: d.packet.flow,
                            truth: seg1_truth,
                        },
                    });
                }

                // Segment 2 (core → destination ToR): downstream demux must
                // *infer* the core.
                demux_total += 1;
                let inferred = demux.traversed_core(&d.packet);
                match inferred {
                    Some(c) if c == actual_core => demux_correct += 1,
                    Some(_) => {}
                    None => demux_unassociated += 1,
                }
                let seg2_truth = d.delivered_at.saturating_since(core_hop.arrived);
                let seg2_key = if naive {
                    Some(NAIVE_ID)
                } else {
                    inferred.and_then(|c| deployment.core_sender(c).map(|s| s.id))
                };
                if let Some(k) = seg2_key {
                    seg2.entry(k).or_default().push(Event {
                        at: d.delivered_at,
                        order,
                        ev: Ev::Regular {
                            flow: d.packet.flow,
                            truth: seg2_truth,
                        },
                    });
                }
            }
        }
    }

    // Drain the event queues through receiver instances.
    let mut seg1_flows = FlowTable::new();
    let mut seg2_flows = FlowTable::new();
    let mut segments = Vec::new();
    let mut drain =
        |events: &mut Vec<Event>, bound: SenderId, name: String, out: &mut FlowTable| {
            events.sort_by_key(|e| (e.at, e.order));
            let mut rx: RliReceiver = RliReceiver::new(ReceiverConfig {
                sender: bound,
                clock: ClockModel::perfect(),
                interpolator: Interpolator::Linear,
                max_buffer: 1 << 22,
                record_estimates: false,
            });
            for e in events.iter() {
                match e.ev {
                    Ev::Reference(info) => rx.on_reference(e.at, &info),
                    Ev::Regular { flow, truth } => rx.on_regular(e.at, flow, Some(truth)),
                }
            }
            let report = rx.finish();
            if let (Some(est), Some(truth)) = (
                report.flows.aggregate_est_mean(),
                report.flows.aggregate_true_mean(),
            ) {
                segments.push(SegmentObservation {
                    name,
                    est_mean_ns: est,
                    true_mean_ns: truth,
                    packets: report.counters.estimated,
                });
            }
            out.merge(report.flows);
        };

    let mut seg1_keys: Vec<(TopoId, SenderId)> = seg1.keys().copied().collect();
    seg1_keys.sort();
    for key in seg1_keys {
        let (core, sender) = key;
        let from = deployment
            .tor_senders
            .iter()
            .find(|s| s.id == sender)
            .map(|s| tree.node(s.tor).name.clone())
            .unwrap_or_else(|| "mixed".to_string());
        let name = format!("{from}→{}", tree.node(core).name);
        let mut events = seg1.remove(&key).expect("key exists");
        drain(&mut events, sender, name, &mut seg1_flows);
    }
    let mut seg2_keys: Vec<SenderId> = seg2.keys().copied().collect();
    seg2_keys.sort();
    for key in seg2_keys {
        let from = deployment
            .core_senders
            .iter()
            .find(|s| s.id == key)
            .map(|s| tree.node(s.core).name.clone())
            .unwrap_or_else(|| "mixed".to_string());
        let name = format!("{from}→{}", tree.node(dst_tor).name);
        let mut events = seg2.remove(&key).expect("key exists");
        drain(&mut events, key, name, &mut seg2_flows);
    }

    let seg1_errors = seg1_flows.mean_relative_errors(cfg.min_flow_packets);
    let seg2_errors = seg2_flows.mean_relative_errors(cfg.min_flow_packets);
    FatTreeOutcome {
        seg1_flows,
        seg2_flows,
        seg1_errors,
        seg2_errors,
        demux_total,
        demux_correct,
        demux_unassociated,
        segments,
        measured_delivered,
        refs_emitted,
    }
}

/// A labeled batch of fat-tree runs (demux ablations, incast fan-in
/// sweeps, …) executed by the shared [`rlir_exec::SweepRunner`]. Each point
/// is a self-contained config; runs are independent and seed-deterministic.
pub struct FatTreeSweep {
    /// Master seed for point-context derivation.
    pub seed: u64,
    /// `(label, config)` per point.
    pub points: Vec<(String, FatTreeExpConfig)>,
}

impl rlir_exec::Scenario for FatTreeSweep {
    type Point = (String, FatTreeExpConfig);
    type Outcome = (String, FatTreeOutcome);
    type Aggregate = Vec<(String, FatTreeOutcome)>;

    fn seed(&self) -> u64 {
        self.seed
    }

    fn points(&self) -> Vec<(String, FatTreeExpConfig)> {
        self.points.clone()
    }

    fn run_point(
        &self,
        _ctx: &rlir_exec::PointContext,
        (label, cfg): &(String, FatTreeExpConfig),
    ) -> (String, FatTreeOutcome) {
        (label.clone(), run_fattree(cfg))
    }

    fn aggregate(
        &self,
        outcomes: impl Iterator<Item = (String, FatTreeOutcome)>,
    ) -> Vec<(String, FatTreeOutcome)> {
        outcomes.collect()
    }
}

/// Run a labeled fat-tree batch through the shared executor.
pub fn run_fattree_sweep(
    sweep: &FatTreeSweep,
    runner: &rlir_exec::SweepRunner,
) -> Vec<(String, FatTreeOutcome)> {
    runner.run(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(demux: CoreDemux) -> FatTreeExpConfig {
        let mut cfg = FatTreeExpConfig::paper(11, SimDuration::from_millis(20));
        cfg.policy = PolicyKind::Static { n: 30 };
        cfg.demux = demux;
        cfg
    }

    #[test]
    fn reverse_ecmp_demux_is_perfect() {
        let out = run_fattree(&quick(CoreDemux::ReverseEcmp));
        assert!(out.measured_delivered > 500, "{}", out.measured_delivered);
        assert!(out.demux_total > 0);
        assert_eq!(
            out.demux_correct, out.demux_total,
            "reverse ECMP must be exact"
        );
        assert_eq!(out.demux_unassociated, 0);
        assert!(out.refs_emitted.0 > 0 && out.refs_emitted.1 > 0);
    }

    #[test]
    fn marking_demux_is_perfect_too() {
        let out = run_fattree(&quick(CoreDemux::Marking));
        assert!(out.demux_total > 0);
        assert_eq!(out.demux_correct, out.demux_total, "marking must be exact");
    }

    #[test]
    fn naive_demux_associates_nothing() {
        let out = run_fattree(&quick(CoreDemux::Naive));
        assert!(out.demux_total > 0);
        assert_eq!(out.demux_correct, 0);
        assert_eq!(out.demux_unassociated, out.demux_total);
        assert_eq!(out.demux_accuracy(), 0.0);
        // Estimates still happen (mixed receivers) — they are just wrong
        // more often; at minimum they must exist for the ablation contrast.
        assert!(out.seg2_flows.estimate_count() > 0);
    }

    #[test]
    fn segments_cover_sources_and_cores() {
        let out = run_fattree(&quick(CoreDemux::ReverseEcmp));
        // 2 src ToRs × (targets at up to 4 cores) + up to 4 core→dst rows.
        assert!(out.segments.len() >= 4, "{:?}", out.segments.len());
        for s in &out.segments {
            assert!(s.name.contains('→'), "{}", s.name);
            assert!(s.est_mean_ns.is_finite());
        }
    }

    #[test]
    fn estimation_errors_are_reasonable_with_demux() {
        let out = run_fattree(&quick(CoreDemux::ReverseEcmp));
        assert!(!out.seg2_errors.is_empty());
        let med = rlir_stats::Ecdf::new(out.seg2_errors.clone())
            .median()
            .unwrap();
        assert!(med < 1.0, "median seg2 error {med}");
    }

    #[test]
    fn anomaly_shows_up_in_the_right_segment() {
        let mut cfg = quick(CoreDemux::ReverseEcmp);
        cfg.anomaly = Some(CoreAnomaly {
            core_ordinal: 0,
            extra_processing: SimDuration::from_micros(400),
        });
        let out = run_fattree(&cfg);
        let tree = FatTree::new(cfg.k, cfg.hash);
        let bad_core = tree.cores().next().unwrap();
        let bad_name = tree.node(bad_core).name.clone();
        // The segment leaving the bad core must be among the slowest seg-2
        // rows (the extra processing delays departures from that core).
        let seg2_rows: Vec<_> = out
            .segments
            .iter()
            .filter(|s| s.name.starts_with("C["))
            .collect();
        assert!(!seg2_rows.is_empty());
        let slowest = seg2_rows
            .iter()
            .max_by(|a, b| a.est_mean_ns.partial_cmp(&b.est_mean_ns).unwrap())
            .unwrap();
        assert!(
            slowest.name.starts_with(&bad_name),
            "slowest seg2 {} is not the faulty core {bad_name}",
            slowest.name
        );
    }
}
