//! RLIR on the fat-tree: the architecture of §3 end-to-end.
//!
//! Measured traffic flows from several source ToRs to one destination ToR
//! (the paper's T1 → T7) across a fabric loaded with background traffic.
//! RLIR instances are deployed per [`crate::deployment::Deployment`]: the
//! path is split into two segments at the cores, `ToR → core` and
//! `core → ToR`, each measured by its own sender/receiver pairs with the
//! receiver-side demultiplexing of §3.1.
//!
//! The experiment runs in two simulation phases: phase 1 (no references)
//! yields every core's regular-packet crossing times, from which the core
//! senders' 1-and-n injection schedules are derived; phase 2 runs the full
//! workload with all reference streams and feeds the measurement plane from
//! the delivered ground truth.
//!
//! Outputs cover the demux ablation (A1/A3: naive vs marking vs
//! reverse-ECMP association accuracy and the resulting estimation error)
//! and the per-segment observations consumed by the anomaly localizer (A5).

use crate::demux::{CoreDemux, RlirDemux};
use crate::deployment::{Deployment, CORE_SENDER_BASE};
use crate::detect::{ClosedLoopSink, Detection, DetectorConfig};
use crate::fabric::{build_network, FatTreeFabric};
use crate::localization::SegmentObservation;
use crate::plane::{
    DrainMode, MeasurementPlane, PlaneConfig, StateLayout, TapPoint, TapSpec, TenantReport,
    TruthRef,
};
use rlir_net::clock::ClockModel;
use rlir_net::fxhash::FxHashMap;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::{FlowKey, HashAlgo};
use rlir_rli::{merge_epoch_series, EpochSnapshot, FlowTable, PolicyKind, RliSender};
use rlir_sim::{
    run_network_sharded, run_network_streamed_opts, FaultScript, HopSink, Network, NetworkRunStats,
    NullSink, QueueConfig, RunOptions, ShardPlan, StopFlag, StreamedDelivery,
};
use rlir_topo::{FatTree, Role, TopoId};
use serde::{Deserialize, Serialize};

/// Dispatch one engine phase per [`FatTreeExpConfig::shards`]: the
/// sequential engine when `None`, the pod-sharded engine (pods + core
/// group from [`FatTree::pod_partition`]) when `Some(n)` — `n` is capped
/// by the partition's group count and floored at 1.
#[allow(clippy::too_many_arguments)]
fn run_phase(
    cfg: &FatTreeExpConfig,
    tree: &FatTree,
    network: Network,
    fabric: &FatTreeFabric<'_>,
    injections: Vec<(TopoId, Packet)>,
    sink: &mut impl HopSink,
    opts: RunOptions<'_>,
    on_delivery: &mut impl FnMut(&StreamedDelivery<'_>),
) -> NetworkRunStats {
    match cfg.shards {
        Some(n) => {
            let plan = ShardPlan::new(tree.pod_partition());
            run_network_sharded(
                network,
                fabric,
                injections,
                sink,
                opts,
                &plan,
                n.max(1),
                on_delivery,
            )
            .stats
        }
        None => run_network_streamed_opts(network, fabric, injections, sink, opts, on_delivery),
    }
}

/// A deliberate latency fault injected at one core (for localization).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CoreAnomaly {
    /// Which core, as an ordinal into [`FatTree::cores`].
    pub core_ordinal: usize,
    /// Extra per-packet processing delay at that core.
    pub extra_processing: SimDuration,
}

/// A latency fault at an *arbitrary* switch (cores and edge/aggregation
/// switches alike) — the `localize` scenario's victim injection.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SwitchAnomaly {
    /// The afflicted switch.
    pub node: TopoId,
    /// Extra per-packet processing delay at that switch.
    pub extra_processing: SimDuration,
}

/// Fat-tree experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FatTreeExpConfig {
    /// Fat-tree arity (the paper's Fig. 1 is k = 4).
    pub k: usize,
    /// Master seed.
    pub seed: u64,
    /// Trace duration.
    pub duration: SimDuration,
    /// Base ECMP hash family.
    pub hash: HashAlgo,
    /// Number of measured source ToRs (taken from pods other than the
    /// destination's).
    pub n_src_tors: usize,
    /// Offered load per measured source ToR (fraction of an edge link).
    pub measured_load: f64,
    /// Offered load per background ToR.
    pub background_load: f64,
    /// Injection policy for every sender.
    pub policy: PolicyKind,
    /// Downstream demultiplexing strategy.
    pub demux: CoreDemux,
    /// Queue parameters of every switch port.
    pub queue: QueueConfig,
    /// Link propagation delay.
    pub link_delay: SimDuration,
    /// Optional core fault.
    pub anomaly: Option<CoreAnomaly>,
    /// Optional fault at an arbitrary switch (composes with `anomaly`;
    /// takes precedence if both name the same switch).
    pub switch_anomaly: Option<SwitchAnomaly>,
    /// Optional synchronized burst envelope applied to every *measured*
    /// source trace (the incast regime: all sources transmit in the same
    /// windows, fan-in collides at the destination's downlink).
    pub burst: Option<rlir_trace::BurstShape>,
    /// Flow filter for error CDFs.
    pub min_flow_packets: u64,
    /// Epoch width of the measurement plane: every tap additionally
    /// exports per-epoch [`EpochSnapshot`]s
    /// ([`FatTreeOutcome::segment_epochs`]). `None` keeps whole-run
    /// aggregates only. Never perturbs the per-flow statistics.
    pub epoch: Option<SimDuration>,
    /// Run the plane's pre-streaming buffered-sort drain (the differential
    /// oracle) instead of the default streaming path. Testing only.
    pub buffered_oracle: bool,
    /// Global plane pending-observation budget
    /// ([`PlaneConfig::pending_budget`]): graceful degradation under
    /// memory pressure for continuous operation. `None` (the default)
    /// leaves only the per-tap caps.
    #[serde(default)]
    pub plane_budget: Option<usize>,
    /// Shard count for the pod-sharded engine (`rlir_sim::shard`):
    /// `Some(n)` routes both engine phases through
    /// [`run_network_sharded`] over the fat-tree's pod partition —
    /// byte-identical for every `n`, including `Some(1)`, which is the
    /// identity baseline. `None` (the default) keeps the sequential
    /// engine, whose same-time tie order differs; existing pinned digests
    /// are untouched.
    #[serde(default)]
    pub shards: Option<usize>,
    /// Run the measurement plane in the pre-PR-8 per-tap state layout
    /// ([`StateLayout::PerTap`]: private flow table + reorder heap per
    /// tap) instead of the shared-arena default. Differential testing
    /// only.
    #[serde(default)]
    pub per_tap_plane: bool,
    /// Tenant assignment for the plane's taps: `Some((w1, w2))` places the
    /// segment-1 taps in tenant 0 with weight `w1` and the segment-2 taps
    /// in tenant 1 with weight `w2` — weighted guaranteed shares of
    /// [`FatTreeExpConfig::plane_budget`], with work-conserving borrowing
    /// (see [`crate::plane::TenantId`]). `None` (the default) keeps every
    /// tap in the single default tenant, byte-identical to the pre-tenant
    /// plane.
    #[serde(default)]
    pub tenant_split: Option<(u64, u64)>,
}

impl FatTreeExpConfig {
    /// Paper-flavoured defaults: k=4 fabric, static 1-and-100 senders,
    /// reverse-ECMP demux, moderate load.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        FatTreeExpConfig {
            k: 4,
            seed,
            duration,
            hash: HashAlgo::Crc32 { seed: 0xD47A },
            n_src_tors: 2,
            measured_load: 0.10,
            background_load: 0.15,
            policy: PolicyKind::Static { n: 100 },
            demux: CoreDemux::ReverseEcmp,
            queue: QueueConfig::oc192(),
            link_delay: SimDuration::from_micros(1),
            anomaly: None,
            switch_anomaly: None,
            burst: None,
            min_flow_packets: 1,
            epoch: Some(SimDuration::from_millis(5)),
            buffered_oracle: false,
            plane_budget: None,
            shards: None,
            per_tap_plane: false,
            tenant_split: None,
        }
    }

    /// The measured destination ToR this configuration targets (first ToR
    /// of the last pod).
    pub fn dst_tor(&self, tree: &FatTree) -> TopoId {
        tree.tor(self.k - 1, 0)
    }

    /// The measured source ToRs: round-robin over pods other than the
    /// destination's.
    pub fn src_tors(&self, tree: &FatTree) -> Vec<TopoId> {
        let half = tree.half();
        (0..self.n_src_tors)
            .map(|i| tree.tor(i % (self.k - 1), (i / (self.k - 1)) % half))
            .collect()
    }
}

/// Outcome of one fat-tree run.
#[derive(Debug, Clone)]
pub struct FatTreeOutcome {
    /// Segment-1 (source ToR → core) per-flow table, merged over receivers.
    pub seg1_flows: FlowTable,
    /// Segment-2 (core → destination ToR) per-flow table.
    pub seg2_flows: FlowTable,
    /// Per-flow mean relative errors, segment 1.
    pub seg1_errors: Vec<f64>,
    /// Per-flow mean relative errors, segment 2.
    pub seg2_errors: Vec<f64>,
    /// Measured regular packets judged by the downstream demux.
    pub demux_total: u64,
    /// …of which associated with the *correct* core.
    pub demux_correct: u64,
    /// …of which left unassociated (always all of them under naive).
    pub demux_unassociated: u64,
    /// Per-receiver segment observations (input to the localizer).
    pub segments: Vec<SegmentObservation>,
    /// Measured regular packets delivered end-to-end.
    pub measured_delivered: u64,
    /// References emitted by ToR senders / core senders.
    pub refs_emitted: (u64, u64),
    /// Per-segment (per-tap) epoch series, `(segment name, snapshots)`, in
    /// tap attachment order — segment 1 first. Empty unless
    /// [`FatTreeExpConfig::epoch`] was set.
    pub segment_epochs: Vec<(String, Vec<EpochSnapshot>)>,
    /// Segment-1 series merged across receivers.
    pub seg1_epochs: Vec<EpochSnapshot>,
    /// Segment-2 series merged across receivers.
    pub seg2_epochs: Vec<EpochSnapshot>,
    /// The epoch width the run used, ns.
    pub epoch_ns: Option<u64>,
    /// Highest per-tap buffered-observation high-water mark — O(reorder
    /// window) on the default streaming path, O(run) under the oracle.
    pub peak_pending: usize,
    /// Observations that arrived after their reorder window was flushed
    /// (0 when the window covers the workload's reordering, as it must).
    pub late: u64,
    /// Regular observations shed across every tap (per-tap caps plus the
    /// global [`FatTreeExpConfig::plane_budget`]).
    pub shed: u64,
    /// High-water mark of pending observations summed across all taps —
    /// the quantity the plane budget bounds.
    pub peak_pending_total: usize,
    /// Observations lost to tap outages, summed across taps: down-time
    /// discards plus crash-destroyed window/estimator state.
    pub lost_window_obs: u64,
    /// Non-empty epochs produced at or after a cold recovery, summed
    /// across taps (0 without tap faults).
    pub recovered_epochs: u64,
    /// Tap outages ([`rlir_sim::FaultKind::TapDown`]) the plane absorbed.
    pub tap_outages: u64,
    /// Per-tenant budget accounting, first-seen order (the single default
    /// tenant unless [`FatTreeExpConfig::tenant_split`] was set).
    pub tenants: Vec<TenantReport>,
}

impl FatTreeOutcome {
    /// Fraction of judged packets associated with the correct core.
    pub fn demux_accuracy(&self) -> f64 {
        if self.demux_total == 0 {
            0.0
        } else {
            self.demux_correct as f64 / self.demux_total as f64
        }
    }
}

/// Synthetic sender id used by "mixed" (non-demultiplexed) receivers in the
/// naive ablation.
const NAIVE_ID: SenderId = SenderId(u16::MAX);

fn measured_trace_cfg(
    cfg: &FatTreeExpConfig,
    tree: &FatTree,
    idx: usize,
    src: TopoId,
    dst: TopoId,
) -> rlir_trace::TraceConfig {
    let mut tc = rlir_trace::TraceConfig::paper_regular(cfg.seed ^ (idx as u64 + 1), cfg.duration);
    tc.link_rate_bps = cfg.queue.rate_bps;
    tc.target_utilization = cfg.measured_load;
    tc.src_prefix = tree.host_prefix(src);
    tc.dst_prefix = tree.host_prefix(dst);
    tc.first_packet_id = (idx as u64 + 1) << 34;
    tc
}

/// The measured traffic of a configuration: one trace per source ToR
/// towards the destination block, with the burst envelope applied when
/// configured. Shared by [`run_fattree`] and the engine benchmarks (so
/// `BENCH_network.json` times exactly this workload).
pub fn measured_traces(cfg: &FatTreeExpConfig, tree: &FatTree) -> Vec<(TopoId, rlir_trace::Trace)> {
    let dst_tor = cfg.dst_tor(tree);
    cfg.src_tors(tree)
        .into_iter()
        .enumerate()
        .map(|(i, src)| {
            let mut trace = rlir_trace::generate(&measured_trace_cfg(cfg, tree, i, src, dst_tor));
            if let Some(shape) = cfg.burst {
                trace = rlir_trace::compress_into_bursts(&trace, shape);
            }
            (src, trace)
        })
        .collect()
}

/// The background traffic of a configuration: every non-measured ToR sends
/// to a rotated partner (never the destination ToR, never a measured
/// source as origin). Shared by [`run_fattree`] and the engine benchmarks.
pub fn background_injections(cfg: &FatTreeExpConfig, tree: &FatTree) -> Vec<(TopoId, Packet)> {
    let half = tree.half();
    let dst_tor = cfg.dst_tor(tree);
    let src_tors = cfg.src_tors(tree);
    let all_tors: Vec<TopoId> = tree.tors().collect();
    let mut injections = Vec::new();
    for (bi, &tor) in all_tors.iter().enumerate() {
        if tor == dst_tor || src_tors.contains(&tor) || cfg.background_load <= 0.0 {
            continue;
        }
        let partner = all_tors
            .iter()
            .copied()
            .cycle()
            .skip(bi + half + 1)
            .find(|&p| p != tor && p != dst_tor)
            .expect("some partner exists");
        let mut tc = rlir_trace::TraceConfig::paper_regular(
            cfg.seed ^ 0xBAC0 ^ (bi as u64) << 3,
            cfg.duration,
        );
        tc.link_rate_bps = cfg.queue.rate_bps;
        tc.target_utilization = cfg.background_load;
        tc.src_prefix = tree.host_prefix(tor);
        tc.dst_prefix = tree.host_prefix(partner);
        tc.first_packet_id = (0x100 + bi as u64) << 34;
        let trace = rlir_trace::generate(&tc);
        injections.extend(trace.packets.iter().map(|p| (tor, *p)));
    }
    injections
}

/// Outcome of a closed-loop (fault-bearing) fat-tree run: the usual
/// outcome plus the online detector's verdict and the engine's
/// fault/memory accounting from phase 2.
#[derive(Debug, Clone)]
pub struct ClosedLoopOutcome {
    /// The measurement outcome — truncated at the detection point when the
    /// detector fired (the run stops; that is the point).
    pub outcome: FatTreeOutcome,
    /// The online alarm, if one fired.
    pub detection: Option<Detection>,
    /// Packets killed by the fault script in phase 2 (loss bursts +
    /// blackholes).
    pub fault_drops: u64,
    /// Engine in-flight high-water mark of phase 2 — the soak harness's
    /// flat-memory witness.
    pub peak_live_slots: usize,
    /// Scheduler events processed in phase 2.
    pub events: u64,
    /// Packets delivered in phase 2.
    pub delivered: u64,
}

/// Run the experiment.
pub fn run_fattree(cfg: &FatTreeExpConfig) -> FatTreeOutcome {
    run_fattree_faulted(cfg, None, None).outcome
}

/// [`run_fattree`] with a mid-run [`FaultScript`] applied inside **both**
/// simulation phases (the fabric is faulted, so the phase-1 crossing
/// schedules see the same network the measurement phase does) and an
/// optional closed-loop online detector watching phase 2. When the
/// detector fires it raises the engine's stop flag, so the run halts at
/// the detection watermark — time-to-localize is measured online, not by
/// post-hoc replay. With `None`/`None` this is exactly [`run_fattree`].
pub fn run_fattree_faulted(
    cfg: &FatTreeExpConfig,
    faults: Option<&FaultScript>,
    detector: Option<&DetectorConfig>,
) -> ClosedLoopOutcome {
    let tree = FatTree::new(cfg.k, cfg.hash);
    let half = tree.half();
    let dst_tor = cfg.dst_tor(&tree);

    // Measured sources: round-robin over pods other than the destination's.
    let src_tors = cfg.src_tors(&tree);
    let deployment = Deployment::for_destination(&tree, &src_tors, dst_tor);
    let demux = RlirDemux::new(&tree, cfg.demux);

    // ---- Workload -------------------------------------------------------
    let measured_traces = measured_traces(cfg, &tree);
    let mut injections: Vec<(usize, Packet)> = Vec::new();
    for (src, trace) in &measured_traces {
        injections.extend(trace.packets.iter().map(|p| (*src, *p)));
    }
    injections.extend(background_injections(cfg, &tree));

    // ---- ToR-uplink senders (computable offline: the uplink a packet
    // takes is a pure function of its flow key) --------------------------
    let mut refs_tor = 0u64;
    for (i, (src, trace)) in measured_traces.iter().enumerate() {
        let mut senders: Vec<RliSender> = (0..half)
            .map(|u| {
                let spec = deployment.tor_sender(*src, u).expect("deployed");
                RliSender::new(
                    spec.id,
                    ClockModel::perfect(),
                    cfg.policy.build(),
                    spec.targets.iter().map(|(_, k)| *k).collect(),
                )
            })
            .collect();
        let _ = i;
        for p in &trace.packets {
            let uplink = tree.node(*src).hash.select(&p.flow, half);
            for r in senders[uplink].observe(p) {
                refs_tor += 1;
                injections.push((*src, *r));
            }
        }
    }

    // ---- Simulation phases ---------------------------------------------
    let slowed = |extra: SimDuration| QueueConfig {
        processing_delay: cfg.queue.processing_delay + extra,
        ..cfg.queue
    };
    // `switch_anomaly` first: `build_network` takes the first matching
    // override, so it wins over `anomaly` on the same switch.
    let overrides: Vec<(TopoId, QueueConfig)> = cfg
        .switch_anomaly
        .iter()
        .map(|a| (a.node, slowed(a.extra_processing)))
        .chain(cfg.anomaly.iter().map(|a| {
            let core = tree
                .cores()
                .nth(a.core_ordinal)
                .expect("core ordinal in range");
            (core, slowed(a.extra_processing))
        }))
        .collect();
    let fabric = FatTreeFabric::new(&tree, matches!(cfg.demux, CoreDemux::Marking));

    // Phase 1: derive core-crossing schedules (regular + background only,
    // ToR references included so the load matches phase 2 closely).
    // Streamed deliveries: the crossing tables are built straight from the
    // delivery callback — no `Vec<NetDelivery>` is ever materialised, so
    // this phase runs in O(in-flight) engine memory. Per-core sequences
    // are sorted before use below, so the callback's processing order
    // (vs the buffered run's delivery-time order) is immaterial.
    let mut crossings: FxHashMap<TopoId, Vec<(SimTime, u32)>> = FxHashMap::default();
    run_phase(
        cfg,
        &tree,
        build_network(&tree, cfg.queue, cfg.link_delay, &overrides),
        &fabric,
        injections.clone(),
        &mut NullSink,
        RunOptions {
            faults,
            ..RunOptions::default()
        },
        &mut |d| {
            if !d.packet.is_regular() {
                return;
            }
            for h in d.hops {
                if matches!(tree.node(h.node).role, Role::Core { .. }) {
                    crossings
                        .entry(h.node)
                        .or_default()
                        .push((h.arrived, d.packet.size));
                }
            }
        },
    );

    // Core senders: replay each core's crossing sequence through the policy.
    let mut refs_core = 0u64;
    for spec in &deployment.core_senders {
        let mut sender = RliSender::new(
            spec.id,
            ClockModel::perfect(),
            cfg.policy.build(),
            vec![spec.target],
        );
        let Some(seq) = crossings.get_mut(&spec.core) else {
            continue;
        };
        seq.sort_unstable();
        for &(at, size) in seq.iter() {
            let proxy = Packet::regular(0, spec.target, size, at);
            for r in sender.observe(&proxy) {
                refs_core += 1;
                injections.push((spec.core, *r));
            }
        }
    }

    // Phase 2: the full run, observed live by the measurement plane — the
    // paper's router-level deployment expressed as hop-event taps instead
    // of post-hoc event-queue plumbing. The workload accounting (not a
    // measurement-plane concern — how well the downstream demux associated
    // measured packets, from ground truth) rides on the same streamed
    // delivery callback, so phase 2 never buffers deliveries either.
    let (mut plane, seg1_taps) = attach_rlir_taps(cfg, &tree, &deployment, &demux);
    let dst_tor = deployment.dst_tor;
    let mut demux_total = 0u64;
    let mut demux_correct = 0u64;
    let mut demux_unassociated = 0u64;
    let mut measured_delivered = 0u64;
    let mut on_delivery = |d: &StreamedDelivery<'_>| {
        if d.packet.reference_info().is_some()
            || !d.packet.is_regular()
            || d.delivered_node != dst_tor
            || measured_src(&demux, &deployment, &d.packet.flow).is_none()
        {
            return;
        }
        let Some(core_hop) = d
            .hops
            .iter()
            .find(|h| matches!(tree.node(h.node).role, Role::Core { .. }))
        else {
            return; // intra-pod: not covered by this deployment
        };
        measured_delivered += 1;
        demux_total += 1;
        match demux.traversed_core(d.packet) {
            Some(c) if c == core_hop.node => demux_correct += 1,
            Some(_) => {}
            None => demux_unassociated += 1,
        }
    };
    let phase2_net = build_network(&tree, cfg.queue, cfg.link_delay, &overrides);
    let stop = StopFlag::new();
    let opts = RunOptions {
        faults,
        stop: detector.is_some().then_some(&stop),
        ..RunOptions::default()
    };
    let (stats, detection) = match detector {
        Some(dc) => {
            let mut sink = ClosedLoopSink::new(&mut plane, *dc, stop.clone());
            let stats = run_phase(
                cfg,
                &tree,
                phase2_net,
                &fabric,
                injections,
                &mut sink,
                opts,
                &mut on_delivery,
            );
            (stats, sink.into_detection())
        }
        None => {
            let stats = run_phase(
                cfg,
                &tree,
                phase2_net,
                &fabric,
                injections,
                &mut plane,
                opts,
                &mut on_delivery,
            );
            (stats, None)
        }
    };

    // Fold tap reports into the per-segment outcome.
    let report = plane.finish();
    let epoch_ns = report.epoch_ns;
    let peak_pending_total = report.peak_pending_total;
    let mut seg1_flows = FlowTable::new();
    let mut seg2_flows = FlowTable::new();
    let mut segments = Vec::new();
    let mut segment_epochs = Vec::new();
    let mut peak_pending = 0usize;
    let mut late = 0u64;
    let mut shed = 0u64;
    let mut lost_window_obs = 0u64;
    let mut recovered_epochs = 0u64;
    let mut tap_outages = 0u64;
    for (i, tap) in report.taps.into_iter().enumerate() {
        if let Some(seg) = tap.segment() {
            segments.push(seg);
        }
        peak_pending = peak_pending.max(tap.peak_pending);
        late += tap.late;
        shed += tap.shed;
        lost_window_obs += tap.lost_window_obs;
        recovered_epochs += tap.recovered_epochs;
        tap_outages += u64::from(tap.outages);
        if epoch_ns.is_some() {
            segment_epochs.push((tap.name, tap.report.epochs));
        }
        if i < seg1_taps {
            seg1_flows.merge(tap.report.flows);
        } else {
            seg2_flows.merge(tap.report.flows);
        }
    }
    let (seg1_epochs, seg2_epochs) = match epoch_ns {
        Some(e) => {
            let series: Vec<&[EpochSnapshot]> =
                segment_epochs.iter().map(|(_, s)| s.as_slice()).collect();
            (
                merge_epoch_series(&series[..seg1_taps], e),
                merge_epoch_series(&series[seg1_taps..], e),
            )
        }
        None => (Vec::new(), Vec::new()),
    };

    let seg1_errors = seg1_flows.mean_relative_errors(cfg.min_flow_packets);
    let seg2_errors = seg2_flows.mean_relative_errors(cfg.min_flow_packets);
    ClosedLoopOutcome {
        outcome: FatTreeOutcome {
            seg1_flows,
            seg2_flows,
            seg1_errors,
            seg2_errors,
            demux_total,
            demux_correct,
            demux_unassociated,
            segments,
            measured_delivered,
            refs_emitted: (refs_tor, refs_core),
            segment_epochs,
            seg1_epochs,
            seg2_epochs,
            epoch_ns,
            peak_pending,
            late,
            shed,
            peak_pending_total,
            lost_window_obs,
            recovered_epochs,
            tap_outages,
            tenants: report.tenants,
        },
        detection,
        fault_drops: stats.fault_drops,
        peak_live_slots: stats.peak_live_slots,
        events: stats.events,
        delivered: stats.delivered,
    }
}

/// Origin ToR of a measured flow, if it is one of the deployment's sources
/// (upstream demultiplexing by IP-prefix matching, §3.1).
fn measured_src(demux: &RlirDemux<'_>, deployment: &Deployment, flow: &FlowKey) -> Option<TopoId> {
    demux
        .origin_tor(&Packet::regular(0, *flow, 0, SimTime::ZERO))
        .filter(|t| deployment.src_tors.contains(t))
}

/// Instantiate the paper's RLIR deployment as measurement-plane taps.
///
/// Segment 1 (ToR → core): one receiver per `(core, ToR-uplink sender)`
/// pair at the core's ingress, scoring against injection-to-core truth.
/// Segment 2 (core → destination ToR): one receiver per core sender at the
/// destination ToR's delivery point, scoring against core-to-delivery
/// truth; the meter applies the downstream demux (marking / reverse-ECMP)
/// to decide which receiver a packet belongs to. Under the naive ablation
/// each point collapses to a single "mixed" receiver ([`NAIVE_ID`]).
///
/// Returns the plane plus the number of segment-1 taps (taps are reported
/// in attachment order: segment 1 first).
fn attach_rlir_taps<'a>(
    cfg: &FatTreeExpConfig,
    tree: &'a FatTree,
    deployment: &'a Deployment,
    demux: &'a RlirDemux<'a>,
) -> (MeasurementPlane<'a>, usize) {
    let naive = matches!(cfg.demux, CoreDemux::Naive);
    let dst_tor = deployment.dst_tor;
    let cores: Vec<TopoId> = tree.cores().collect();
    let mut plane = MeasurementPlane::with_config(PlaneConfig {
        drain: if cfg.buffered_oracle {
            DrainMode::BufferedSort
        } else {
            DrainMode::default()
        },
        layout: if cfg.per_tap_plane {
            StateLayout::PerTap
        } else {
            StateLayout::SharedArena
        },
        epoch: cfg.epoch,
        pending_budget: cfg.plane_budget,
    });
    if let Some((w1, w2)) = cfg.tenant_split {
        plane.set_tenant_weight(0, w1);
        plane.set_tenant_weight(1, w2);
    }

    let seg1_keys: Vec<(TopoId, SenderId)> = if naive {
        cores.iter().map(|&c| (c, NAIVE_ID)).collect()
    } else {
        let mut keys: Vec<_> = deployment
            .tor_senders
            .iter()
            .flat_map(|s| s.targets.iter().map(move |(core, _)| (*core, s.id)))
            .collect();
        keys.sort();
        keys
    };
    let seg1_taps = seg1_keys.len();
    for (core, sender) in seg1_keys {
        let from = deployment
            .tor_senders
            .iter()
            .find(|s| s.id == sender)
            .map(|s| tree.node(s.tor).name.clone())
            .unwrap_or_else(|| "mixed".to_string());
        let mut tap = TapSpec::new(
            format!("{from}→{}", tree.node(core).name),
            TapPoint::NodeArrival(core),
            sender,
        );
        // Evaluation methodology (the paper's): score only packets whose
        // end-to-end truth exists. Live taps are the plane default now; the
        // harness opts back into delivered gating explicitly.
        tap.delivered_only = true;
        tap.truth = TruthRef::SinceInjection;
        if cfg.tenant_split.is_some() {
            tap.tenant = 0;
        }
        tap.ref_map = Some(if naive {
            // The mixed receiver listens to every ToR-sender stream at
            // once (core-sender references belong to segment 2).
            Box::new(|info| {
                (info.sender.0 < CORE_SENDER_BASE).then_some(ReferenceInfo {
                    sender: NAIVE_ID,
                    ..*info
                })
            })
        } else {
            Box::new(move |info: &ReferenceInfo| (info.sender == sender).then_some(*info))
        });
        tap.meter = Some(Box::new(move |ev| {
            if ev.node != dst_tor {
                return false; // only flows measured end-to-end are judged
            }
            let Some(origin) = measured_src(demux, deployment, &ev.packet.flow) else {
                return false;
            };
            naive || deployment.tor_sender_for(tree, origin, core) == Some(sender)
        }));
        plane.attach(tap);
    }

    let seg2_keys: Vec<SenderId> = if naive {
        vec![NAIVE_ID]
    } else {
        deployment.core_senders.iter().map(|s| s.id).collect()
    };
    for sender in seg2_keys {
        let from = deployment
            .core_senders
            .iter()
            .find(|s| s.id == sender)
            .map(|s| tree.node(s.core).name.clone())
            .unwrap_or_else(|| "mixed".to_string());
        let mut tap = TapSpec::new(
            format!("{from}→{}", tree.node(dst_tor).name),
            TapPoint::Delivery(dst_tor),
            sender,
        );
        tap.delivered_only = true;
        tap.truth = TruthRef::SinceArrivalAt(cores.clone());
        if cfg.tenant_split.is_some() {
            tap.tenant = 1;
        }
        tap.ref_map = Some(if naive {
            Box::new(|info| {
                (info.sender.0 >= CORE_SENDER_BASE).then_some(ReferenceInfo {
                    sender: NAIVE_ID,
                    ..*info
                })
            })
        } else {
            Box::new(move |info: &ReferenceInfo| (info.sender == sender).then_some(*info))
        });
        tap.meter = Some(Box::new(move |ev| {
            if !ev
                .hops
                .iter()
                .any(|h| matches!(tree.node(h.node).role, Role::Core { .. }))
            {
                return false; // intra-pod
            }
            if measured_src(demux, deployment, &ev.packet.flow).is_none() {
                return false;
            }
            // Downstream demultiplexing: *infer* the traversed core and
            // route the packet to that core's receiver.
            naive
                || demux
                    .traversed_core(ev.packet)
                    .and_then(|c| deployment.core_sender(c))
                    .map(|s| s.id)
                    == Some(sender)
        }));
        plane.attach(tap);
    }

    (plane, seg1_taps)
}

/// A labeled batch of fat-tree runs (demux ablations, incast fan-in
/// sweeps, …) executed by the shared [`rlir_exec::SweepRunner`]. Each point
/// is a self-contained config; runs are independent and seed-deterministic.
pub struct FatTreeSweep {
    /// Master seed for point-context derivation.
    pub seed: u64,
    /// `(label, config)` per point.
    pub points: Vec<(String, FatTreeExpConfig)>,
}

impl rlir_exec::Scenario for FatTreeSweep {
    type Point = (String, FatTreeExpConfig);
    type Outcome = (String, FatTreeOutcome);
    type Aggregate = Vec<(String, FatTreeOutcome)>;

    fn seed(&self) -> u64 {
        self.seed
    }

    fn points(&self) -> Vec<(String, FatTreeExpConfig)> {
        self.points.clone()
    }

    fn run_point(
        &self,
        _ctx: &rlir_exec::PointContext,
        (label, cfg): &(String, FatTreeExpConfig),
    ) -> (String, FatTreeOutcome) {
        (label.clone(), run_fattree(cfg))
    }

    fn aggregate(
        &self,
        outcomes: impl Iterator<Item = (String, FatTreeOutcome)>,
    ) -> Vec<(String, FatTreeOutcome)> {
        outcomes.collect()
    }
}

/// Run a labeled fat-tree batch through the shared executor.
pub fn run_fattree_sweep(
    sweep: &FatTreeSweep,
    runner: &rlir_exec::SweepRunner,
) -> Vec<(String, FatTreeOutcome)> {
    runner.run(sweep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(demux: CoreDemux) -> FatTreeExpConfig {
        let mut cfg = FatTreeExpConfig::paper(11, SimDuration::from_millis(20));
        cfg.policy = PolicyKind::Static { n: 30 };
        cfg.demux = demux;
        cfg
    }

    #[test]
    fn reverse_ecmp_demux_is_perfect() {
        let out = run_fattree(&quick(CoreDemux::ReverseEcmp));
        assert!(out.measured_delivered > 500, "{}", out.measured_delivered);
        assert!(out.demux_total > 0);
        assert_eq!(
            out.demux_correct, out.demux_total,
            "reverse ECMP must be exact"
        );
        assert_eq!(out.demux_unassociated, 0);
        assert!(out.refs_emitted.0 > 0 && out.refs_emitted.1 > 0);
    }

    #[test]
    fn marking_demux_is_perfect_too() {
        let out = run_fattree(&quick(CoreDemux::Marking));
        assert!(out.demux_total > 0);
        assert_eq!(out.demux_correct, out.demux_total, "marking must be exact");
    }

    #[test]
    fn naive_demux_associates_nothing() {
        let out = run_fattree(&quick(CoreDemux::Naive));
        assert!(out.demux_total > 0);
        assert_eq!(out.demux_correct, 0);
        assert_eq!(out.demux_unassociated, out.demux_total);
        assert_eq!(out.demux_accuracy(), 0.0);
        // Estimates still happen (mixed receivers) — they are just wrong
        // more often; at minimum they must exist for the ablation contrast.
        assert!(out.seg2_flows.estimate_count() > 0);
    }

    #[test]
    fn segments_cover_sources_and_cores() {
        let out = run_fattree(&quick(CoreDemux::ReverseEcmp));
        // 2 src ToRs × (targets at up to 4 cores) + up to 4 core→dst rows.
        assert!(out.segments.len() >= 4, "{:?}", out.segments.len());
        for s in &out.segments {
            assert!(s.name.contains('→'), "{}", s.name);
            assert!(s.est_mean_ns.is_finite());
        }
    }

    #[test]
    fn estimation_errors_are_reasonable_with_demux() {
        let out = run_fattree(&quick(CoreDemux::ReverseEcmp));
        assert!(!out.seg2_errors.is_empty());
        let med = rlir_stats::Ecdf::new(out.seg2_errors.clone())
            .median()
            .unwrap();
        assert!(med < 1.0, "median seg2 error {med}");
    }

    #[test]
    fn anomaly_shows_up_in_the_right_segment() {
        let mut cfg = quick(CoreDemux::ReverseEcmp);
        cfg.anomaly = Some(CoreAnomaly {
            core_ordinal: 0,
            extra_processing: SimDuration::from_micros(400),
        });
        let out = run_fattree(&cfg);
        let tree = FatTree::new(cfg.k, cfg.hash);
        let bad_core = tree.cores().next().unwrap();
        let bad_name = tree.node(bad_core).name.clone();
        // The segment leaving the bad core must be among the slowest seg-2
        // rows (the extra processing delays departures from that core).
        let seg2_rows: Vec<_> = out
            .segments
            .iter()
            .filter(|s| s.name.starts_with("C["))
            .collect();
        assert!(!seg2_rows.is_empty());
        let slowest = seg2_rows
            .iter()
            .max_by(|a, b| a.est_mean_ns.partial_cmp(&b.est_mean_ns).unwrap())
            .unwrap();
        assert!(
            slowest.name.starts_with(&bad_name),
            "slowest seg2 {} is not the faulty core {bad_name}",
            slowest.name
        );
    }
}
