//! Fabric-wide latency-anomaly localization sweep — the operator workflow
//! the whole architecture exists for (§1: "detecting and localizing
//! latency-related problems at router and switch levels").
//!
//! Each point injects a queueing anomaly (extra per-packet processing
//! delay) at one *randomly drawn* core or edge (aggregation) switch of the
//! fat-tree, runs the full RLIR deployment through the measurement plane,
//! and asks the segment localizer to name the culprit. The sweep varies
//! background utilization: as the fabric's baseline queueing grows, the
//! anomaly's severity relative to the healthy-segment median shrinks, and
//! detection accuracy degrades — exactly the operating envelope an operator
//! needs to know.
//!
//! Localization granularity is the deployment's segment structure: a core
//! victim is nameable exactly (`C[g.j]→T…`), while an edge victim is
//! correct when the flagged segment's path traverses it (a source-pod edge
//! sits on `T→C` segments of its pod; a destination-pod edge sits on the
//! `C→T` segments of its core group). That is the paper's trade-off of
//! deployment cost against granularity, made measurable.

use super::fattree::{run_fattree, FatTreeExpConfig, SwitchAnomaly};
use crate::localization::{localize, LocalizerConfig};
use crate::plane::localize_epoch_series;
use rlir_exec::{PointContext, Scenario, SweepRunner};
use rlir_net::time::SimDuration;
use rlir_rli::{merge_epoch_series, EpochSnapshot};
use rlir_topo::{FatTree, Role, TopoId};
use serde::{Deserialize, Serialize};

/// Configuration of the localization sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizeConfig {
    /// Base fat-tree experiment; `seed`, `background_load` and
    /// `switch_anomaly` are overridden per point.
    pub base: FatTreeExpConfig,
    /// Sweep points: background utilization per non-measured ToR.
    pub utilizations: Vec<f64>,
    /// Victim draws per utilization point.
    pub trials: usize,
    /// Anomaly magnitude (extra per-packet processing at the victim).
    pub extra_processing: SimDuration,
    /// Detector configuration.
    pub localizer: LocalizerConfig,
}

impl LocalizeConfig {
    /// Defaults: the k = 4 paper fabric, a 400 µs processing fault, three
    /// victims per utilization, background load swept from idle to busy.
    pub fn paper(seed: u64, duration: SimDuration) -> Self {
        LocalizeConfig {
            base: FatTreeExpConfig::paper(seed, duration),
            utilizations: vec![0.05, 0.15, 0.30],
            trials: 3,
            extra_processing: SimDuration::from_micros(400),
            localizer: LocalizerConfig::default(),
        }
    }
}

/// Outcome of one victim trial.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizeTrial {
    /// Background utilization of this trial's point.
    pub utilization: f64,
    /// Name of the afflicted switch.
    pub victim: String,
    /// Name of the top-ranked flagged segment (`None`: nothing flagged).
    pub flagged: Option<String>,
    /// Severity of the top finding (`NaN` when nothing was flagged).
    pub severity: f64,
    /// Whether the top finding's segment traverses the victim.
    pub correct: bool,
    /// Scored segments available to the detector.
    pub segments: usize,
    /// Anomaly **onset**: start time of the first epoch in which the
    /// per-epoch ranking flagged a segment traversing the victim (`None`:
    /// never flagged per epoch, or epochs disabled). The whole-run
    /// detector answers "where"; this answers "since when".
    pub onset_ns: Option<u64>,
    /// The victim's merged per-epoch series (union over the segments that
    /// traverse it) — the registry's time-series export.
    pub victim_epochs: Vec<EpochSnapshot>,
}

/// Per-utilization aggregate of the sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizePoint {
    /// Background utilization.
    pub utilization: f64,
    /// Victim trials at this utilization.
    pub trials: usize,
    /// Trials whose top finding traversed the victim.
    pub correct: usize,
    /// Trials in which the detector flagged anything at all.
    pub flagged: usize,
    /// `correct / trials`.
    pub accuracy: f64,
    /// Mean top-finding severity over flagged trials (`NaN` if none).
    pub mean_severity: f64,
    /// Trials whose per-epoch ranking flagged the victim in some epoch.
    pub onsets: usize,
    /// Mean onset time over those trials, ns (`NaN` if none).
    pub mean_onset_ns: f64,
}

/// Switches the sweep may afflict: every core, plus every edge
/// (aggregation) switch on a measured path — source-pod edges carry the
/// `T→C` segments, destination-pod edges the `C→T` segments. Edges in
/// purely-background pods would be invisible to the deployment (that is
/// the partial-deployment trade-off, not a detector failure), so they are
/// not drawn.
pub fn victim_pool(cfg: &FatTreeExpConfig, tree: &FatTree) -> Vec<TopoId> {
    let dst_tor = cfg.dst_tor(tree);
    let src_tors = cfg.src_tors(tree);
    let mut measured_pods: Vec<usize> = src_tors
        .iter()
        .chain(std::iter::once(&dst_tor))
        .map(|&t| match tree.node(t).role {
            Role::Tor { pod, .. } => pod,
            _ => unreachable!("ToRs have ToR roles"),
        })
        .collect();
    measured_pods.sort_unstable();
    measured_pods.dedup();
    tree.cores()
        .chain(tree.aggs().filter(|&a| match tree.node(a).role {
            Role::Agg { pod, .. } => measured_pods.contains(&pod),
            _ => unreachable!("aggs() yields aggs"),
        }))
        .collect()
}

/// Segment names whose path traverses `victim`, for this deployment's
/// segment structure (see module docs). Shared with the closed-loop
/// `faults` sweep, which scores its online detections the same way.
pub(crate) fn expected_segments(
    cfg: &FatTreeExpConfig,
    tree: &FatTree,
    victim: TopoId,
) -> Vec<String> {
    let half = tree.half();
    let dst_tor = cfg.dst_tor(tree);
    let dst_pod = cfg.k - 1;
    let dst_name = &tree.node(dst_tor).name;
    match tree.node(victim).role {
        // A core's own queue delays departures from the core → its C→T row.
        Role::Core { .. } => vec![format!("{}→{dst_name}", tree.node(victim).name)],
        Role::Agg { pod, idx } if pod == dst_pod => {
            // On the downward path of every core in its group.
            (0..half)
                .map(|m| format!("{}→{dst_name}", tree.node(tree.core(idx, m)).name))
                .collect()
        }
        Role::Agg { pod, idx } => {
            // On the upward path of its pod's measured ToRs via uplink
            // `idx`, towards every core of group `idx`.
            cfg.src_tors(tree)
                .into_iter()
                .filter(|&t| matches!(tree.node(t).role, Role::Tor { pod: p, .. } if p == pod))
                .flat_map(|t| {
                    let tor_name = tree.node(t).name.clone();
                    (0..half)
                        .map(move |m| format!("{tor_name}→{}", tree.node(tree.core(idx, m)).name))
                })
                .collect()
        }
        // ToR victims are not drawn from the pool.
        Role::Tor { .. } => Vec::new(),
    }
}

/// The sweep as a [`Scenario`]: `utilizations × trials` points, victim
/// drawn per point from the derived seed.
pub struct LocalizeSweep<'a> {
    cfg: &'a LocalizeConfig,
}

impl<'a> LocalizeSweep<'a> {
    /// Build from configuration.
    pub fn new(cfg: &'a LocalizeConfig) -> Self {
        LocalizeSweep { cfg }
    }
}

/// Full output of the localization sweep: the per-utilization aggregates
/// plus every trial (the registry's per-epoch series export reads the
/// trials).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalizeReport {
    /// Per-utilization aggregates, in sweep order.
    pub points: Vec<LocalizePoint>,
    /// Every victim trial, in point order.
    pub trials: Vec<LocalizeTrial>,
}

impl Scenario for LocalizeSweep<'_> {
    type Point = (f64, usize);
    type Outcome = LocalizeTrial;
    type Aggregate = LocalizeReport;

    fn seed(&self) -> u64 {
        self.cfg.base.seed
    }

    fn points(&self) -> Vec<(f64, usize)> {
        self.cfg
            .utilizations
            .iter()
            .flat_map(|&u| (0..self.cfg.trials).map(move |t| (u, t)))
            .collect()
    }

    fn run_point(
        &self,
        ctx: &PointContext,
        &(utilization, _trial): &(f64, usize),
    ) -> LocalizeTrial {
        let mut cfg = self.cfg.base.clone();
        cfg.seed = ctx.seed; // fresh workload per trial, seed-derived
        cfg.background_load = utilization;
        let tree = FatTree::new(cfg.k, cfg.hash);
        let pool = victim_pool(&cfg, &tree);
        // Victim draw: one multiplicative hash step of the derived seed —
        // deterministic in (config, point index), independent of threads.
        let draw = (ctx.seed.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 32) as usize;
        let victim = pool[draw % pool.len()];
        cfg.switch_anomaly = Some(SwitchAnomaly {
            node: victim,
            extra_processing: self.cfg.extra_processing,
        });

        let out = run_fattree(&cfg);
        let findings = localize(&out.segments, &self.cfg.localizer);
        let expected = expected_segments(&cfg, &tree, victim);
        let top = findings.first();
        // The epoch dimension: rank segments per epoch and record when the
        // victim first stood out, plus its merged time-series.
        let (onset_ns, victim_epochs) = match out.epoch_ns {
            Some(epoch_ns) => {
                let series: Vec<(&str, &[EpochSnapshot])> = out
                    .segment_epochs
                    .iter()
                    .map(|(n, s)| (n.as_str(), s.as_slice()))
                    .collect();
                let per_epoch = localize_epoch_series(&series, epoch_ns, &self.cfg.localizer);
                let onset = per_epoch
                    .iter()
                    .find(|ef| ef.findings.iter().any(|f| expected.contains(&f.name)))
                    .map(|ef| ef.start.as_nanos());
                let victim_series: Vec<&[EpochSnapshot]> = out
                    .segment_epochs
                    .iter()
                    .filter(|(n, _)| expected.contains(n))
                    .map(|(_, s)| s.as_slice())
                    .collect();
                (onset, merge_epoch_series(&victim_series, epoch_ns))
            }
            None => (None, Vec::new()),
        };
        LocalizeTrial {
            utilization,
            victim: tree.node(victim).name.clone(),
            flagged: top.map(|f| f.name.clone()),
            severity: top.map(|f| f.severity).unwrap_or(f64::NAN),
            correct: top.is_some_and(|f| expected.contains(&f.name)),
            segments: out.segments.len(),
            onset_ns,
            victim_epochs,
        }
    }

    fn aggregate(&self, outcomes: impl Iterator<Item = LocalizeTrial>) -> LocalizeReport {
        let mut points: Vec<LocalizePoint> = Vec::with_capacity(self.cfg.utilizations.len());
        let mut trials: Vec<LocalizeTrial> = Vec::new();
        let mut severity_sum = 0.0f64;
        let mut onset_sum = 0.0f64;
        for trial in outcomes {
            // Outcomes arrive in point order: trials of one utilization are
            // contiguous.
            let same = points
                .last()
                .is_some_and(|p| p.utilization == trial.utilization);
            if !same {
                severity_sum = 0.0;
                onset_sum = 0.0;
                points.push(LocalizePoint {
                    utilization: trial.utilization,
                    trials: 0,
                    correct: 0,
                    flagged: 0,
                    accuracy: 0.0,
                    mean_severity: f64::NAN,
                    onsets: 0,
                    mean_onset_ns: f64::NAN,
                });
            }
            let p = points.last_mut().expect("just ensured");
            p.trials += 1;
            if trial.correct {
                p.correct += 1;
            }
            if trial.severity.is_finite() {
                p.flagged += 1;
                severity_sum += trial.severity;
                p.mean_severity = severity_sum / p.flagged as f64;
            }
            if let Some(onset) = trial.onset_ns {
                p.onsets += 1;
                onset_sum += onset as f64;
                p.mean_onset_ns = onset_sum / p.onsets as f64;
            }
            p.accuracy = p.correct as f64 / p.trials as f64;
            trials.push(trial);
        }
        LocalizeReport { points, trials }
    }
}

/// Run the localization sweep through the shared executor, returning the
/// per-utilization aggregates.
pub fn run_localize(cfg: &LocalizeConfig, runner: &SweepRunner) -> Vec<LocalizePoint> {
    run_localize_full(cfg, runner).points
}

/// Run the localization sweep and return aggregates *and* trials (the
/// trials carry the per-epoch victim series and onset times).
pub fn run_localize_full(cfg: &LocalizeConfig, runner: &SweepRunner) -> LocalizeReport {
    runner.run(&LocalizeSweep::new(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_rli::PolicyKind;

    fn quick_cfg() -> LocalizeConfig {
        let mut cfg = LocalizeConfig::paper(23, SimDuration::from_millis(20));
        cfg.base.policy = PolicyKind::Static { n: 30 };
        cfg.utilizations = vec![0.05, 0.15];
        cfg.trials = 2;
        cfg
    }

    #[test]
    fn localizes_random_victims_at_low_load() {
        let rep = run_localize_full(&quick_cfg(), &SweepRunner::single());
        let pts = &rep.points;
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert_eq!(p.trials, 2);
        }
        // At calm load the 400 µs fault towers over µs-scale baselines:
        // every draw must be localized to a segment traversing the victim.
        assert_eq!(pts[0].correct, pts[0].trials, "low-load trials missed");
        assert!(
            pts[0].mean_severity > 3.0,
            "severity {}",
            pts[0].mean_severity
        );
        // The epoch dimension: the fault is on from t = 0, so the per-epoch
        // ranking must name the victim with an early onset, and every trial
        // must carry the victim's time-series.
        assert_eq!(rep.trials.len(), 4);
        let low: Vec<_> = rep
            .trials
            .iter()
            .filter(|t| t.utilization == 0.05)
            .collect();
        for t in &low {
            assert!(!t.victim_epochs.is_empty(), "victim series missing");
            let onset = t.onset_ns.expect("persistent fault must have an onset");
            assert!(onset <= 10_000_000, "onset {onset} ns not early");
        }
        assert!(pts[0].onsets >= 1);
        assert!(pts[0].mean_onset_ns.is_finite());
    }

    #[test]
    fn victim_pool_covers_cores_and_measured_edges() {
        let cfg = quick_cfg();
        let tree = FatTree::new(cfg.base.k, cfg.base.hash);
        let pool = victim_pool(&cfg.base, &tree);
        // k=4, 2 src ToRs (pods 0 and 1) + dst pod 3: 4 cores + 3 pods × 2 aggs.
        assert_eq!(pool.len(), 4 + 6);
        assert!(pool
            .iter()
            .all(|&v| !matches!(tree.node(v).role, Role::Tor { .. })));
        // Background-only pod 2 is excluded.
        assert!(!pool.contains(&tree.agg(2, 0)));
    }

    #[test]
    fn expected_segments_follow_paths() {
        let cfg = quick_cfg();
        let tree = FatTree::new(cfg.base.k, cfg.base.hash);
        // Core victim → exactly its C→T row.
        let core = tree.core(1, 0);
        let exp = expected_segments(&cfg.base, &tree, core);
        assert_eq!(exp, vec!["C[1.0]→T[3.0]".to_string()]);
        // Destination-pod edge → both cores of its group.
        let exp = expected_segments(&cfg.base, &tree, tree.agg(3, 0));
        assert_eq!(
            exp,
            vec!["C[0.0]→T[3.0]".to_string(), "C[0.1]→T[3.0]".to_string()]
        );
        // Source-pod edge → its pod's measured ToR times its core group.
        let exp = expected_segments(&cfg.base, &tree, tree.agg(0, 1));
        assert_eq!(
            exp,
            vec!["T[0.0]→C[1.0]".to_string(), "T[0.0]→C[1.1]".to_string()]
        );
    }

    #[test]
    fn thread_count_invariant() {
        let cfg = {
            let mut c = quick_cfg();
            c.utilizations = vec![0.1];
            c
        };
        let a = run_localize(&cfg, &SweepRunner::single());
        let b = run_localize(&cfg, &SweepRunner::new(2));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
            assert_eq!(x.correct, y.correct);
            assert_eq!(x.mean_severity.to_bits(), y.mean_severity.to_bits());
        }
    }
}
