//! Ready-made experiment harnesses reproducing the paper's evaluation.
//!
//! * [`two_hop`] — the Fig. 3 controlled environment behind Figs. 4(a)–(c)
//!   (per-flow accuracy under cross traffic) and Fig. 5 (reference-packet
//!   interference).
//! * [`loss_sweep`] — the paired with/without-references utilization sweep
//!   of Fig. 5.
//! * [`fattree`] — the §3 RLIR architecture on a k-ary fat-tree: partial
//!   deployment, reference-stream engineering, demultiplexing ablations and
//!   anomaly localization.

pub mod fattree;
pub mod loss_sweep;
pub mod two_hop;

pub use fattree::{run_fattree, CoreAnomaly, FatTreeExpConfig, FatTreeOutcome};
pub use loss_sweep::{run_loss_sweep, run_loss_sweep_on, LossPoint, LossSweepConfig};
pub use two_hop::{run_two_hop, run_two_hop_on, CrossSpec, TwoHopConfig, TwoHopOutcome};
