//! Ready-made experiment harnesses reproducing the paper's evaluation.
//!
//! Every harness is a [`rlir_exec::Scenario`] executed by the shared
//! [`rlir_exec::SweepRunner`] — one worker pool, deterministic point order,
//! derived per-point seeds, thread-count-invariant results.
//!
//! * [`two_hop`] — the Fig. 3 controlled environment behind Figs. 4(a)–(c)
//!   (per-flow accuracy under cross traffic) and Fig. 5 (reference-packet
//!   interference); [`two_hop::TwoHopSweep`] runs labeled config grids.
//! * [`loss_sweep`] — the paired with/without-references utilization sweep
//!   of Fig. 5.
//! * [`fattree`] — the §3 RLIR architecture on a k-ary fat-tree: partial
//!   deployment, reference-stream engineering, demultiplexing ablations and
//!   anomaly localization; [`fattree::FatTreeSweep`] runs labeled batches.
//! * [`asymmetric`] — round-trip measurement when forward and reverse
//!   traverse different queues: per-direction RLI attribution under
//!   progressively asymmetric load.
//! * [`incast`] — synchronized burst fan-in on the fat-tree: per-flow
//!   estimate accuracy as partition–aggregate bursts steepen.
//! * [`localize`] — fabric-wide anomaly localization: a random core/edge
//!   victim per point, detection accuracy swept over background load —
//!   per epoch, so findings carry onset times.
//! * [`drop_aware`] — live (non-delivered-gated) taps on a loss-heavy
//!   path: estimator behaviour when the packets it metered die downstream.
//! * [`replay`] — streaming pcap trace replay through the O(buffer)
//!   ingest path, scored against a two-capture-point external ground
//!   truth and re-verified in-run against the Vec-ingest oracle.
//! * [`plane_scale`] — the fleet-scale plane harness: every `(switch,
//!   port)` of the fabric tapped at once under one shared-arena budget,
//!   reporting plane overhead and state bytes versus tap count.
//! * [`faults`] — the closed-loop robustness sweep: mid-run switch
//!   degradation at scripted onsets, detected online with engine
//!   termination; reports time-to-localize and false positives over
//!   onset × background load.
//! * [`chaos`] — seeded chaos campaigns: correlated flaps, gray loss,
//!   tap crash/recovery and a hidden degradation per campaign, plus the
//!   tenant cross-talk byte-identity probe and a hostile-ingest leg.

pub mod asymmetric;
pub mod chaos;
pub mod drop_aware;
pub mod fattree;
pub mod faults;
pub mod incast;
pub mod localize;
pub mod loss_sweep;
pub mod plane_scale;
pub mod replay;
pub mod two_hop;

pub use asymmetric::{
    asymmetric_traces, run_asymmetric, AsymmetricConfig, AsymmetricPoint, AsymmetricSweep,
};
pub use chaos::{run_chaos, ChaosCampaign, ChaosCampaignConfig, ChaosReport, IngestLeg};
pub use drop_aware::{run_drop_aware, DropAwareConfig, DropAwarePoint, DropAwareSweep};
pub use fattree::{
    background_injections, measured_traces, run_fattree, run_fattree_faulted, run_fattree_sweep,
    ClosedLoopOutcome, CoreAnomaly, FatTreeExpConfig, FatTreeOutcome, FatTreeSweep, SwitchAnomaly,
};
pub use faults::{run_faults, FaultsConfig, FaultsPoint, FaultsSweep, FaultsTrial};
pub use incast::{run_incast, IncastConfig, IncastPoint, IncastSweep};
pub use localize::{
    run_localize, run_localize_full, victim_pool, LocalizeConfig, LocalizePoint, LocalizeReport,
    LocalizeSweep, LocalizeTrial,
};
pub use loss_sweep::{run_loss_sweep, run_loss_sweep_on, LossPoint, LossSweep, LossSweepConfig};
pub use plane_scale::{run_plane_scale, PlaneScaleConfig, PlaneScaleOutcome, StateSample};
pub use replay::{run_replay, synth_capture, RefInterleave, ReplayConfig, ReplayOutcome};
pub use two_hop::{
    run_two_hop, run_two_hop_on, run_two_hop_sweep, CrossSpec, TwoHopConfig, TwoHopOutcome,
    TwoHopPoint, TwoHopSweep,
};
