//! Fleet-scale measurement plane: every port of the fabric tapped at once.
//!
//! The other harnesses deploy RLI the way the paper does — a handful of
//! receivers at cores and the destination ToR. This one asks the opposite
//! question: what does the *measurement plane itself* cost when an
//! operator taps **every `(switch, port)` of a k-ary fat-tree** under one
//! fixed memory budget? That is the regime PR 8's shared state exists
//! for: one plane-wide [`rlir_rli::FlowArena`] holds every tap's flow
//! accumulators, one shared calendar wheel holds every tap's reorder
//! window, and [`PlaneConfig::pending_budget`] is the single allocation
//! authority across all of them.
//!
//! The harness reuses the fat-tree workload generators
//! ([`measured_traces`] / [`background_injections`]) plus the ToR-uplink
//! reference senders, then attaches `n` delivered-gated
//! [`TapPoint::PortDeparture`] taps spread evenly across the fabric's
//! ports (`n = ` all of them for the headline point). Delivered gating is
//! deliberate: reconstructing upstream crossing times from delivery
//! records is the plane's worst case — every observation rides the shared
//! reorder wheel, so the wheel, the arena, and the budget are all on the
//! hot path at fleet width.
//!
//! Every tap listens to the union of reference streams (the mixed-receiver
//! idiom of the naive demux ablation), so every tap estimates — this is a
//! plane-overhead harness, not an accuracy one. While the run streams, a
//! sampling sink polls the plane's point-in-time introspection APIs
//! ([`MeasurementPlane::approx_state_bytes`],
//! [`MeasurementPlane::snapshot_epochs`]) — the snapshot-query a collector
//! would issue against a live fabric, exercised here without stopping the
//! run.

use crate::deployment::Deployment;
use crate::fabric::{build_network, FatTreeFabric};
use crate::plane::{MeasurementPlane, PlaneConfig, StateLayout, TapPoint, TapSpec, TruthRef};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_rli::{PolicyKind, RliSender};
use rlir_sim::{run_network_streamed_opts, HopEvent, HopSink, RunOptions, StreamedDelivery};
use rlir_topo::{FatTree, TopoId};
use serde::{Deserialize, Serialize};

use super::fattree::{background_injections, measured_traces, FatTreeExpConfig};

/// Synthetic sender id every tap binds to; the ref map rewrites each
/// ToR-uplink reference stream onto it (mixed-receiver idiom).
const MIXED: SenderId = SenderId(u16::MAX);

/// Configuration of one fleet-scale plane run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlaneScaleConfig {
    /// Fabric, workload, plane budget and state layout. The harness runs
    /// a single simulation phase on this fabric; the RLIR deployment
    /// fields (`demux`, `anomaly`, …) are ignored.
    pub base: FatTreeExpConfig,
    /// How many `(switch, port)` taps to attach, spread evenly (by
    /// stride) over the fabric's ports in `(node, port)` order. `None`
    /// taps **all** ports — the headline point.
    pub taps: Option<usize>,
    /// Cadence of the mid-run state/snapshot probe.
    pub sample_every: SimDuration,
}

impl PlaneScaleConfig {
    /// The headline configuration: a k=8 fat-tree (544 tappable ports —
    /// 32 ToRs × 5, 32 aggs × 8, 16 cores × 8), four measured source
    /// ToRs, background on every other ToR, and a fixed plane-wide
    /// pending budget.
    pub fn fleet(seed: u64, duration: SimDuration) -> Self {
        let mut base = FatTreeExpConfig::paper(seed, duration);
        base.k = 8;
        base.n_src_tors = 4;
        base.policy = PolicyKind::Static { n: 50 };
        base.plane_budget = Some(1 << 16);
        PlaneScaleConfig {
            base,
            taps: None,
            sample_every: SimDuration::from_millis(5),
        }
    }

    /// Total tappable `(switch, port)` points of the configured fabric.
    pub fn all_ports(&self) -> usize {
        let tree = FatTree::new(self.base.k, self.base.hash);
        tree.nodes().iter().map(|n| n.ports.len()).sum()
    }
}

/// One mid-run probe of the plane's introspection APIs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StateSample {
    /// Engine watermark at the probe, ns.
    pub at_ns: u64,
    /// [`MeasurementPlane::approx_state_bytes`] at the probe.
    pub state_bytes: usize,
    /// Length of the plane-wide merged epoch series
    /// ([`MeasurementPlane::snapshot_epochs`]) at the probe.
    pub merged_epochs: usize,
}

/// Outcome of one fleet-scale plane run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlaneScaleOutcome {
    /// Taps attached.
    pub taps: usize,
    /// Packets the engine delivered.
    pub delivered: u64,
    /// Scheduler events processed.
    pub events: u64,
    /// Regular observations offered across all taps.
    pub metered: u64,
    /// Per-packet estimates produced across all taps.
    pub estimated: u64,
    /// Reference packets accepted across all taps.
    pub refs_accepted: u64,
    /// Regular observations shed (per-tap caps + the plane budget).
    pub shed: u64,
    /// Observations that arrived after their reorder window flushed.
    pub late: u64,
    /// Highest single-tap pending high-water mark.
    pub peak_pending: usize,
    /// Plane-wide pending high-water mark — what the budget bounds.
    pub peak_pending_total: usize,
    /// Largest observed [`MeasurementPlane::approx_state_bytes`] (mid-run
    /// samples plus a final pre-drain probe).
    pub peak_state_bytes: usize,
    /// Order-sensitive digest of every tap's flow rows and epoch series
    /// (floats folded via `to_bits`) — the bench's in-run byte-identity
    /// witness between [`StateLayout::SharedArena`] and
    /// [`StateLayout::PerTap`].
    pub report_digest: u64,
    /// The mid-run probes, in time order.
    pub samples: Vec<StateSample>,
}

fn fold(h: u64, bits: u64) -> u64 {
    h.rotate_left(7) ^ bits.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The fabric's `(switch, port)` points in `(node, port)` order.
fn all_points(tree: &FatTree) -> Vec<(TopoId, usize)> {
    tree.nodes()
        .iter()
        .enumerate()
        .flat_map(|(id, node)| (0..node.ports.len()).map(move |p| (id, p)))
        .collect()
}

/// `n` points spread evenly over the fabric (stride sampling keeps a
/// 1-tap point and an 8-tap point representative of the whole fabric, not
/// of whichever switch enumerates first).
fn tap_points(tree: &FatTree, n: Option<usize>) -> Vec<(TopoId, usize)> {
    let all = all_points(tree);
    let n = n.unwrap_or(all.len()).clamp(1, all.len());
    (0..n).map(|i| all[i * all.len() / n]).collect()
}

/// Forwards into the wrapped plane and probes its point-in-time
/// introspection APIs on a fixed watermark cadence.
struct SamplingSink<'p, 'a> {
    plane: &'p mut MeasurementPlane<'a>,
    every: SimDuration,
    next: SimTime,
    samples: Vec<StateSample>,
}

impl HopSink for SamplingSink<'_, '_> {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.plane.on_hop(ev);
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        self.plane.on_watermark(watermark);
        if watermark >= self.next {
            self.samples.push(StateSample {
                at_ns: watermark.as_nanos(),
                state_bytes: self.plane.approx_state_bytes(),
                merged_epochs: self.plane.snapshot_epochs().len(),
            });
            while self.next <= watermark {
                self.next += self.every;
            }
        }
    }
}

/// Run one fleet-scale plane point.
pub fn run_plane_scale(cfg: &PlaneScaleConfig) -> PlaneScaleOutcome {
    let base = &cfg.base;
    let tree = FatTree::new(base.k, base.hash);
    let half = tree.half();
    let dst_tor = base.dst_tor(&tree);
    let src_tors = base.src_tors(&tree);
    let deployment = Deployment::for_destination(&tree, &src_tors, dst_tor);

    // Workload: measured traces + background + ToR-uplink references —
    // the exact fat-tree recipe, minus the phase-1 core-sender derivation
    // (no core receivers here; every tap listens to the mixed stream).
    let traces = measured_traces(base, &tree);
    let mut injections: Vec<(TopoId, Packet)> = Vec::new();
    for (src, trace) in &traces {
        injections.extend(trace.packets.iter().map(|p| (*src, *p)));
    }
    injections.extend(background_injections(base, &tree));
    for (src, trace) in &traces {
        let mut senders: Vec<RliSender> = (0..half)
            .map(|u| {
                let spec = deployment.tor_sender(*src, u).expect("deployed");
                RliSender::new(
                    spec.id,
                    ClockModel::perfect(),
                    base.policy.build(),
                    spec.targets.iter().map(|(_, k)| *k).collect(),
                )
            })
            .collect();
        for p in &trace.packets {
            let uplink = tree.node(*src).hash.select(&p.flow, half);
            for r in senders[uplink].observe(p) {
                injections.push((*src, *r));
            }
        }
    }

    // The plane: one delivered-gated tap per selected port, all riding
    // the shared arena + wheel under one budget.
    let mut plane = MeasurementPlane::with_config(PlaneConfig {
        layout: if base.per_tap_plane {
            StateLayout::PerTap
        } else {
            StateLayout::SharedArena
        },
        epoch: base.epoch,
        pending_budget: base.plane_budget,
        ..PlaneConfig::default()
    });
    let points = tap_points(&tree, cfg.taps);
    let taps = points.len();
    for (node, port) in points {
        let mut tap = TapSpec::new(
            format!("{}#p{port}", tree.node(node).name),
            TapPoint::PortDeparture(node, port),
            MIXED,
        );
        tap.delivered_only = true;
        tap.truth = TruthRef::SinceInjection;
        // Mixed receiver: accept every reference stream crossing the port.
        tap.ref_map = Some(Box::new(|info: &ReferenceInfo| {
            Some(ReferenceInfo {
                sender: MIXED,
                ..*info
            })
        }));
        plane.attach(tap);
    }

    let fabric = FatTreeFabric::new(&tree, false);
    let network = build_network(&tree, base.queue, base.link_delay, &[]);
    let mut sink = SamplingSink {
        plane: &mut plane,
        every: cfg.sample_every,
        next: SimTime::ZERO + cfg.sample_every,
        samples: Vec::new(),
    };
    let stats = run_network_streamed_opts(
        network,
        &fabric,
        injections,
        &mut sink,
        RunOptions::default(),
        &mut |_: &StreamedDelivery<'_>| {},
    );
    let samples = std::mem::take(&mut sink.samples);

    // Final pre-drain probe: flow state only grows, so the peak is here
    // or at a mid-run sample with a fuller wheel.
    let final_bytes = plane.approx_state_bytes();
    let peak_state_bytes = samples
        .iter()
        .map(|s| s.state_bytes)
        .chain([final_bytes])
        .max()
        .unwrap_or(0);

    let report = plane.finish();
    let mut out = PlaneScaleOutcome {
        taps,
        delivered: stats.delivered,
        events: stats.events,
        metered: 0,
        estimated: 0,
        refs_accepted: 0,
        shed: 0,
        late: 0,
        peak_pending: 0,
        peak_pending_total: report.peak_pending_total,
        peak_state_bytes,
        report_digest: 0,
        samples,
    };
    let mut h = 0u64;
    for tap in &report.taps {
        out.metered += tap.report.counters.regulars_seen;
        out.estimated += tap.report.counters.estimated;
        out.refs_accepted += tap.report.counters.refs_accepted;
        out.shed += tap.shed;
        out.late += tap.late;
        out.peak_pending = out.peak_pending.max(tap.peak_pending);
        h = fold(h, tap.report.flows.flow_count() as u64);
        h = fold(h, tap.report.flows.estimate_count());
        for row in tap.report.flows.report(1) {
            h = fold(h, row.packets);
            h = fold(h, row.est_mean.to_bits());
            h = fold(h, row.true_mean.unwrap_or(f64::NAN).to_bits());
            h = fold(h, row.est_std.unwrap_or(f64::NAN).to_bits());
        }
        for e in &tap.report.epochs {
            h = fold(h, e.epoch);
            h = fold(h, e.regulars_seen);
            h = fold(h, e.estimated);
            h = fold(h, e.refs_accepted);
            h = fold(h, e.est_mean().unwrap_or(f64::NAN).to_bits());
        }
    }
    out.report_digest = h;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A quick fabric the tests share: k=4 (72 tappable ports — 8 ToRs
    /// × 3, 8 aggs × 4, 4 cores × 4), short run, tight budget.
    fn quick(seed: u64) -> PlaneScaleConfig {
        let mut cfg = PlaneScaleConfig::fleet(seed, SimDuration::from_millis(10));
        cfg.base.k = 4;
        cfg.base.n_src_tors = 2;
        cfg.base.plane_budget = Some(4096);
        cfg
    }

    #[test]
    fn all_ports_run_completes_and_probes_mid_run() {
        let cfg = quick(41);
        assert_eq!(cfg.all_ports(), 72);
        let out = run_plane_scale(&cfg);
        assert_eq!(out.taps, 72);
        assert!(out.delivered > 0);
        assert!(out.metered > 0, "every port must meter traffic");
        assert!(out.estimated > 0, "mixed refs must drive estimation");
        assert_eq!(out.late, 0, "window must cover the delivery lag");
        // The budget is plane-wide: the pending high-water mark for
        // *regulars* stays at or under it (references ride above).
        assert!(out.peak_pending_total > 0);
        // The mid-run probes ran and saw the epoch series forming.
        assert!(!out.samples.is_empty(), "sampling sink must fire");
        assert!(
            out.samples.last().expect("samples").merged_epochs > 0,
            "mid-run snapshot query must see merged epochs"
        );
        assert!(out.peak_state_bytes > 0);
    }

    #[test]
    fn tap_points_spread_and_scale() {
        let tree = FatTree::new(4, rlir_net::HashAlgo::default());
        let one = tap_points(&tree, Some(1));
        let all = tap_points(&tree, None);
        assert_eq!(one.len(), 1);
        assert_eq!(all.len(), 72);
        let four = tap_points(&tree, Some(4));
        // Stride sampling: distinct, ordered, spread across the fabric
        // rather than clustered on the first switch.
        assert_eq!(four.len(), 4);
        assert!(four.windows(2).all(|w| w[0] < w[1]));
        assert!(four.last().expect("4 taps").0 > tree.nodes().len() / 2);
    }

    #[test]
    fn shared_layout_matches_per_tap_oracle() {
        let cfg = quick(43);
        let shared = run_plane_scale(&cfg);
        let mut oracle_cfg = cfg.clone();
        oracle_cfg.base.per_tap_plane = true;
        let oracle = run_plane_scale(&oracle_cfg);
        // Same observations, same estimates, same shedding decisions —
        // the budget sheds identically only if both layouts agree on the
        // plane-wide pending count at every single observation.
        assert_eq!(shared.metered, oracle.metered);
        assert_eq!(shared.estimated, oracle.estimated);
        assert_eq!(shared.refs_accepted, oracle.refs_accepted);
        assert_eq!(shared.shed, oracle.shed);
        assert_eq!(shared.peak_pending_total, oracle.peak_pending_total);
        assert_eq!(
            shared.report_digest, oracle.report_digest,
            "per-tap flow rows / epoch series must be byte-identical"
        );
        assert!(shared.shed > 0, "the quick budget must actually bind");
    }

    #[test]
    fn fleet_memory_is_sublinear_in_tap_count() {
        // The acceptance claim: at fixed traffic, peak plane memory grows
        // sublinearly in tap count, because the budget caps the pending
        // component plane-wide no matter how many taps feed the wheel.
        let run_at = |n: usize| {
            let mut cfg = quick(47);
            cfg.taps = Some(n);
            run_plane_scale(&cfg)
        };
        let sparse = run_at(9);
        let dense = run_at(72);
        assert!(sparse.peak_state_bytes > 0);
        // 8x the taps must cost well under 8x the bytes (measured ~1x:
        // the pending pool is shared and budget-capped).
        assert!(
            dense.peak_state_bytes < sparse.peak_state_bytes * 3,
            "taps 9 -> 72 grew state {} -> {} bytes: not sublinear",
            sparse.peak_state_bytes,
            dense.peak_state_bytes
        );
        // The budget holds at fleet width: regular pending is capped, so
        // the total (references ride above it) stays in its vicinity
        // instead of scaling with tap count.
        let budget = quick(47).base.plane_budget.expect("quick sets one");
        assert!(
            dense.peak_pending_total < budget * 2,
            "peak pending {} vs budget {budget}",
            dense.peak_pending_total
        );
        assert!(dense.shed > sparse.shed, "more taps, more shedding");
    }
}
