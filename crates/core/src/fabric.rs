//! Bridging the fat-tree topology onto the event-driven simulator.
//!
//! [`build_network`] materialises a [`FatTree`] as a `rlir-sim` network —
//! one simulator node per switch, ports in the topology's conventional
//! order, host blocks as host-facing ports. [`FatTreeFabric`] implements the
//! simulator's [`Forwarder`] using the topology's ECMP routing, and
//! optionally performs RLIR's ToS packet marking at core switches.

use crate::demux::core_mark;
use rlir_net::packet::Packet;
use rlir_net::time::SimDuration;
use rlir_sim::{DeadPorts, Forwarder, Network, NodeId, Port, PortId, QueueConfig, RouteDecision};
use rlir_topo::{FatTree, NextHop, PortTarget, Role, TopoId};

/// Build the simulator network for a fat-tree. Simulator node ids equal
/// topology ids and port order matches [`rlir_topo::TopoNode::ports`].
/// `overrides` lets experiments perturb individual switches (e.g. inject a
/// latency anomaly at one core).
pub fn build_network(
    tree: &FatTree,
    queue: QueueConfig,
    link_delay: SimDuration,
    overrides: &[(TopoId, QueueConfig)],
) -> Network {
    let mut net = Network::default();
    for node in tree.nodes() {
        net.add_node(node.name.clone());
    }
    for (id, node) in tree.nodes().iter().enumerate() {
        let cfg = overrides
            .iter()
            .find(|(t, _)| *t == id)
            .map(|(_, c)| *c)
            .unwrap_or(queue);
        for target in &node.ports {
            match target {
                PortTarget::Switch(next) => {
                    net.add_port(id, Port::to_switch(cfg, *next, link_delay));
                }
                PortTarget::Hosts => {
                    net.add_port(id, Port::to_host(cfg, link_delay));
                }
            }
        }
    }
    net
}

/// The forwarding plane: topology ECMP + optional core marking.
#[derive(Debug, Clone)]
pub struct FatTreeFabric<'t> {
    tree: &'t FatTree,
    mark_at_core: bool,
}

impl<'t> FatTreeFabric<'t> {
    /// Build; `mark_at_core` enables RLIR's packet-marking demux support.
    pub fn new(tree: &'t FatTree, mark_at_core: bool) -> Self {
        FatTreeFabric { tree, mark_at_core }
    }
}

impl Forwarder for FatTreeFabric<'_> {
    fn route(&self, node: NodeId, packet: &Packet) -> RouteDecision {
        match self.tree.next_hop(node, &packet.flow) {
            NextHop::Port(p) | NextHop::HostPort(p) => RouteDecision::Forward(p),
            NextHop::Unroutable => RouteDecision::Drop,
        }
    }

    fn on_forward(&self, node: NodeId, _port: PortId, packet: &mut Packet) {
        if self.mark_at_core
            && packet.mark == 0
            && matches!(self.tree.node(node).role, Role::Core { .. })
        {
            packet.mark = core_mark(self.tree, node);
        }
    }

    /// Fault-plane reroute: the fat-tree's path diversity is exactly its
    /// two upward ECMP decisions, so a dead *uplink* falls over to the
    /// next live sibling of the same `k/2` hashed set (scanning from the
    /// hash's choice keeps the fallback deterministic). Downward and
    /// host-facing links have a unique next hop — a dead one blackholes,
    /// which the engine accounts as a route drop.
    fn reroute(
        &self,
        node: NodeId,
        _packet: &Packet,
        chosen: PortId,
        dead: &DeadPorts<'_>,
    ) -> RouteDecision {
        let half = self.tree.half();
        let (lo, hi) = match self.tree.node(node).role {
            Role::Tor { .. } if chosen < half => (0, half),
            Role::Agg { .. } if (half..2 * half).contains(&chosen) => (half, 2 * half),
            _ => return RouteDecision::Drop,
        };
        let span = hi - lo;
        for k in 1..span {
            let p = lo + (chosen - lo + k) % span;
            if !dead.is_dead(p) {
                return RouteDecision::Forward(p);
            }
        }
        RouteDecision::Drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimTime;
    use rlir_net::{FlowKey, HashAlgo};
    use rlir_sim::run_network;

    fn tree() -> FatTree {
        FatTree::new(4, HashAlgo::default())
    }

    fn qcfg() -> QueueConfig {
        QueueConfig {
            rate_bps: 8_000_000_000,
            capacity_bytes: 1 << 20,
            processing_delay: SimDuration::ZERO,
        }
    }

    fn flow(t: &FatTree, s: TopoId, d: TopoId, sport: u16) -> FlowKey {
        FlowKey::tcp(t.host_addr(s, 0), sport, t.host_addr(d, 0), 80)
    }

    #[test]
    fn network_mirrors_topology() {
        let t = tree();
        let net = build_network(&t, qcfg(), SimDuration::from_nanos(100), &[]);
        assert_eq!(net.nodes.len(), t.len());
        for (id, node) in t.nodes().iter().enumerate() {
            assert_eq!(net.nodes[id].ports.len(), node.ports.len(), "{}", node.name);
            assert_eq!(net.nodes[id].name, node.name);
        }
    }

    #[test]
    fn packets_follow_topology_paths() {
        let t = tree();
        let net = build_network(&t, qcfg(), SimDuration::from_nanos(100), &[]);
        let fabric = FatTreeFabric::new(&t, false);
        let (src, dst) = (t.tor(0, 0), t.tor(3, 1));
        let f = flow(&t, src, dst, 777);
        let expected = t.path(&f).unwrap();
        let p = Packet::regular(1, f, 1000, SimTime::ZERO);
        let run = run_network(net, &fabric, vec![(src, p)]);
        assert_eq!(run.deliveries.len(), 1);
        let hops: Vec<_> = run.deliveries[0].hops.iter().map(|h| h.node).collect();
        assert_eq!(hops, expected, "sim path must equal topology path");
        assert_eq!(run.deliveries[0].delivered_node, dst);
    }

    #[test]
    fn marking_stamps_core_only_when_enabled() {
        let t = tree();
        let (src, dst) = (t.tor(0, 0), t.tor(2, 0));
        let f = flow(&t, src, dst, 9);
        let expected_core = t.core_of_path(&f).unwrap();
        for (enabled, want_mark) in [(true, core_mark(&t, expected_core)), (false, 0)] {
            let net = build_network(&t, qcfg(), SimDuration::ZERO, &[]);
            let fabric = FatTreeFabric::new(&t, enabled);
            let p = Packet::regular(1, f, 1000, SimTime::ZERO);
            let run = run_network(net, &fabric, vec![(src, p)]);
            assert_eq!(
                run.deliveries[0].packet.mark, want_mark,
                "enabled={enabled}"
            );
        }
    }

    #[test]
    fn queue_override_slows_one_core() {
        let t = tree();
        let (src, dst) = (t.tor(0, 0), t.tor(2, 0));
        let f = flow(&t, src, dst, 9);
        let core = t.core_of_path(&f).unwrap();
        let slow = QueueConfig {
            processing_delay: SimDuration::from_micros(500),
            ..qcfg()
        };
        let fabric = FatTreeFabric::new(&t, false);
        let base = run_network(
            build_network(&t, qcfg(), SimDuration::ZERO, &[]),
            &fabric,
            vec![(src, Packet::regular(1, f, 1000, SimTime::ZERO))],
        );
        let slowed = run_network(
            build_network(&t, qcfg(), SimDuration::ZERO, &[(core, slow)]),
            &fabric,
            vec![(src, Packet::regular(1, f, 1000, SimTime::ZERO))],
        );
        let d0 = base.deliveries[0].true_delay().as_nanos();
        let d1 = slowed.deliveries[0].true_delay().as_nanos();
        assert_eq!(d1 - d0, 500_000, "anomaly must add exactly 500 µs");
    }

    #[test]
    fn dead_tor_uplink_reroutes_over_ecmp_sibling() {
        use rlir_sim::fault::{FaultEvent, FaultKind, FaultScript};
        use rlir_sim::{run_network_streamed_opts, NullSink, RunOptions};
        let t = tree();
        let (src, dst) = (t.tor(0, 0), t.tor(3, 1));
        // Find a flow whose first upward choice is ToR port 0, then kill
        // that uplink: its ECMP sibling (port 1 at k=4) must absorb it.
        let f = (0..64u16)
            .map(|sport| flow(&t, src, dst, sport))
            .find(|f| t.node(src).hash.select(f, t.half()) == 0)
            .expect("some flow hashes to uplink 0");
        let inj: Vec<(usize, Packet)> = (0..20)
            .map(|i| {
                (
                    src,
                    Packet::regular(i, f, 1000, SimTime::from_nanos(i * 50_000)),
                )
            })
            .collect();
        let script = FaultScript::new(vec![FaultEvent {
            at: SimTime::from_nanos(500_000),
            kind: FaultKind::LinkDown { node: src, port: 0 },
        }]);
        let fabric = FatTreeFabric::new(&t, false);
        let mut first_aggs: Vec<usize> = Vec::new();
        let stats = run_network_streamed_opts(
            build_network(&t, qcfg(), SimDuration::from_nanos(100), &[]),
            &fabric,
            inj,
            &mut NullSink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |d| first_aggs.push(d.hops[1].node),
        );
        assert_eq!(stats.delivered, 20, "sibling uplink must absorb the fault");
        assert_eq!(stats.fault_drops, 0);
        let (a0, a1) = (t.agg(0, 0), t.agg(0, 1));
        assert!(first_aggs.contains(&a0) && first_aggs.contains(&a1));
    }

    #[test]
    fn dead_downlink_blackholes_with_drop_accounting() {
        use rlir_sim::fault::{FaultEvent, FaultKind, FaultScript};
        use rlir_sim::{run_network_streamed_opts, NullSink, RunOptions};
        let t = tree();
        let (src, dst) = (t.tor(0, 0), t.tor(3, 1));
        let f = flow(&t, src, dst, 777);
        let core = t.core_of_path(&f).unwrap();
        // The core's downlink to pod 3 has no equal-cost alternative.
        let script = FaultScript::new(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::LinkDown {
                node: core,
                port: 3,
            },
        }]);
        let inj: Vec<(usize, Packet)> = (0..5)
            .map(|i| {
                (
                    src,
                    Packet::regular(i, f, 1000, SimTime::from_nanos(i * 10_000)),
                )
            })
            .collect();
        let fabric = FatTreeFabric::new(&t, false);
        let stats = run_network_streamed_opts(
            build_network(&t, qcfg(), SimDuration::from_nanos(100), &[]),
            &fabric,
            inj,
            &mut NullSink,
            RunOptions {
                faults: Some(&script),
                ..RunOptions::default()
            },
            |_| {},
        );
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.fault_drops, 5);
        assert_eq!(stats.route_drops[core], 5);
    }

    #[test]
    fn unroutable_packets_dropped_at_ingress() {
        let t = tree();
        let net = build_network(&t, qcfg(), SimDuration::ZERO, &[]);
        let fabric = FatTreeFabric::new(&t, false);
        let f = FlowKey::tcp(
            t.host_addr(t.tor(0, 0), 0),
            1,
            "8.8.8.8".parse().unwrap(),
            53,
        );
        let run = run_network(
            net,
            &fabric,
            vec![(t.tor(0, 0), Packet::regular(1, f, 100, SimTime::ZERO))],
        );
        assert!(run.deliveries.is_empty());
        assert_eq!(run.route_drops[t.tor(0, 0)], 1);
    }
}
