//! Receiver-side traffic demultiplexing (§3.1, the heart of RLIR).
//!
//! "Correct operation of RLI requires applying linear interpolation for
//! packets that traversed exactly the same path as reference packets." When
//! RLI instances sit on different routers, the receiver must therefore
//! associate every regular packet with the reference stream that shared its
//! path:
//!
//! * **Upstream**: identify the packet's origin ToR by *IP prefix matching*
//!   on its source address (each ToR owns an address block); reference
//!   packets carry an explicit sender id.
//! * **Downstream**: identify the *core* the packet crossed, by either
//!   **packet marking** (the core stamps the ToS byte; needs core firmware
//!   support) or **reverse ECMP computation** (re-evaluate the upstream
//!   switches' hash functions; needs the vendors' hash functions).
//!
//! [`CoreDemux::Naive`] disables association entirely — the configuration
//! the paper warns "can be totally wrong" — and is used by the demux
//! ablation experiment.

use rlir_net::fxhash::FxHashMap;
use rlir_net::packet::Packet;
use rlir_net::trie::PrefixTrie;
use rlir_net::FlowKey;
use rlir_topo::{FatTree, Role, TopoId};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// Strategy for the downstream (which-core) association.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoreDemux {
    /// No association at all (ablation baseline; plain RLI across routers).
    Naive,
    /// Read the mark the core stamped into the ToS byte.
    Marking,
    /// Re-run the upstream ECMP hash functions on the flow key.
    ReverseEcmp,
}

impl CoreDemux {
    /// Figure-legend label.
    pub fn label(&self) -> &'static str {
        match self {
            CoreDemux::Naive => "naive",
            CoreDemux::Marking => "marking",
            CoreDemux::ReverseEcmp => "reverse-ecmp",
        }
    }
}

/// The ToS mark a core stamps on forwarded packets: its ordinal within the
/// core layer plus one (zero means "unmarked").
pub fn core_mark(tree: &FatTree, core: TopoId) -> u8 {
    let first = tree.cores().next().expect("fat-tree has cores");
    debug_assert!(matches!(tree.node(core).role, Role::Core { .. }));
    (core - first + 1) as u8
}

/// Inverse of [`core_mark`].
pub fn core_from_mark(tree: &FatTree, mark: u8) -> Option<TopoId> {
    if mark == 0 {
        return None;
    }
    let first = tree.cores().next().expect("fat-tree has cores");
    let core = first + mark as usize - 1;
    (core < tree.len()).then_some(core)
}

/// The RLIR receiver-side demultiplexer.
#[derive(Debug, Clone)]
pub struct RlirDemux<'t> {
    tree: &'t FatTree,
    origin: PrefixTrie<TopoId>,
    mode: CoreDemux,
    /// Per-flow memo for reverse-ECMP association: the traversed core is a
    /// pure function of the flow key, and flows repeat for every packet, so
    /// the hash recomputation is paid once per flow instead of once per
    /// packet. FxHash-keyed on the 13-byte flow key (hot path).
    ecmp_cache: RefCell<FxHashMap<FlowKey, Option<TopoId>>>,
}

impl<'t> RlirDemux<'t> {
    /// Build for a topology; the origin table maps every ToR's host block to
    /// its ToR id.
    pub fn new(tree: &'t FatTree, mode: CoreDemux) -> Self {
        let origin = tree
            .tors()
            .map(|tor| (tree.host_prefix(tor), tor))
            .collect();
        RlirDemux {
            tree,
            origin,
            mode,
            ecmp_cache: RefCell::new(FxHashMap::default()),
        }
    }

    /// The configured downstream strategy.
    pub fn mode(&self) -> CoreDemux {
        self.mode
    }

    /// Upstream association: the origin ToR of a regular packet, by
    /// longest-prefix match on its source address.
    pub fn origin_tor(&self, pkt: &Packet) -> Option<TopoId> {
        self.origin.lookup(pkt.flow.src).copied()
    }

    /// Downstream association: the core this packet traversed, per the
    /// configured strategy. `None` under [`CoreDemux::Naive`], for unmarked
    /// packets under marking, or for intra-pod flows under reverse ECMP.
    pub fn traversed_core(&self, pkt: &Packet) -> Option<TopoId> {
        match self.mode {
            CoreDemux::Naive => None,
            CoreDemux::Marking => core_from_mark(self.tree, pkt.mark),
            CoreDemux::ReverseEcmp => *self
                .ecmp_cache
                .borrow_mut()
                .entry(pkt.flow)
                .or_insert_with(|| self.tree.reverse_ecmp(&pkt.flow).and_then(|r| r.core)),
        }
    }

    /// Flows memoized by the reverse-ECMP cache so far.
    pub fn cached_flows(&self) -> usize {
        self.ecmp_cache.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimTime;
    use rlir_net::{FlowKey, HashAlgo};

    fn tree() -> FatTree {
        FatTree::new(4, HashAlgo::default())
    }

    fn pkt(tree: &FatTree, src_tor: TopoId, dst_tor: TopoId, sport: u16) -> Packet {
        Packet::regular(
            1,
            FlowKey::tcp(
                tree.host_addr(src_tor, 0),
                sport,
                tree.host_addr(dst_tor, 0),
                80,
            ),
            100,
            SimTime::ZERO,
        )
    }

    #[test]
    fn marks_round_trip_for_every_core() {
        let t = tree();
        for core in t.cores() {
            let m = core_mark(&t, core);
            assert!(m > 0);
            assert_eq!(core_from_mark(&t, m), Some(core));
        }
        assert_eq!(core_from_mark(&t, 0), None);
        assert_eq!(core_from_mark(&t, 200), None);
    }

    #[test]
    fn origin_tor_by_prefix() {
        let t = tree();
        let d = RlirDemux::new(&t, CoreDemux::ReverseEcmp);
        let p = pkt(&t, t.tor(2, 1), t.tor(0, 0), 99);
        assert_eq!(d.origin_tor(&p), Some(t.tor(2, 1)));
        // Foreign source → no origin.
        let mut foreign = p;
        foreign.flow.src = "192.168.1.1".parse().unwrap();
        assert_eq!(d.origin_tor(&foreign), None);
    }

    #[test]
    fn reverse_ecmp_mode_matches_routing() {
        let t = tree();
        let d = RlirDemux::new(&t, CoreDemux::ReverseEcmp);
        for sport in 0..100u16 {
            let p = pkt(&t, t.tor(0, 0), t.tor(3, 1), sport);
            assert_eq!(
                d.traversed_core(&p),
                t.core_of_path(&p.flow),
                "sport {sport}"
            );
        }
    }

    #[test]
    fn marking_mode_reads_tos() {
        let t = tree();
        let d = RlirDemux::new(&t, CoreDemux::Marking);
        let mut p = pkt(&t, t.tor(0, 0), t.tor(3, 1), 7);
        assert_eq!(d.traversed_core(&p), None, "unmarked");
        let core = t.cores().nth(2).unwrap();
        p.mark = core_mark(&t, core);
        assert_eq!(d.traversed_core(&p), Some(core));
    }

    #[test]
    fn naive_mode_associates_nothing() {
        let t = tree();
        let d = RlirDemux::new(&t, CoreDemux::Naive);
        let mut p = pkt(&t, t.tor(0, 0), t.tor(3, 1), 7);
        p.mark = 1;
        assert_eq!(d.traversed_core(&p), None);
        assert_eq!(CoreDemux::Naive.label(), "naive");
    }

    #[test]
    fn reverse_ecmp_cache_is_transparent() {
        let t = tree();
        let d = RlirDemux::new(&t, CoreDemux::ReverseEcmp);
        assert_eq!(d.cached_flows(), 0);
        let p = pkt(&t, t.tor(0, 0), t.tor(3, 1), 9);
        let first = d.traversed_core(&p);
        assert_eq!(d.cached_flows(), 1);
        // Repeated packets of the same flow hit the memo and agree.
        for _ in 0..10 {
            assert_eq!(d.traversed_core(&p), first);
        }
        assert_eq!(d.cached_flows(), 1);
        // A different flow adds an entry and still matches the routing.
        let q = pkt(&t, t.tor(0, 0), t.tor(3, 1), 10);
        assert_eq!(d.traversed_core(&q), t.core_of_path(&q.flow));
        assert_eq!(d.cached_flows(), 2);
    }

    #[test]
    fn intra_pod_flows_have_no_core() {
        let t = tree();
        let d = RlirDemux::new(&t, CoreDemux::ReverseEcmp);
        let p = pkt(&t, t.tor(1, 0), t.tor(1, 1), 7);
        assert_eq!(d.traversed_core(&p), None);
    }
}
