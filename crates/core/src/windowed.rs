//! Time-windowed anomaly detection.
//!
//! [`crate::localization`] judges whole-run segment means, which washes out
//! *transient* latency events (a 50 ms microburst inside a 10 s window).
//! This module bins a segment's per-packet estimates
//! ([`rlir_rli::EstimateRecord`], logged by receivers with
//! `record_estimates`) into fixed windows and flags `(segment, window)`
//! pairs whose mean estimate spikes above the segment's own typical level —
//! the "when did it happen" companion to localization's "where".

use rlir_rli::EstimateRecord;
use rlir_stats::BinnedSeries;
use serde::{Deserialize, Serialize};

/// Windowed detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WindowedConfig {
    /// Window width in nanoseconds.
    pub window_ns: u64,
    /// A window is anomalous when its mean exceeds `factor` × the segment's
    /// median window mean.
    pub factor: f64,
    /// Windows with fewer estimates than this are not judged.
    pub min_samples: u64,
}

impl Default for WindowedConfig {
    fn default() -> Self {
        WindowedConfig {
            window_ns: 5_000_000, // 5 ms windows
            factor: 3.0,
            min_samples: 20,
        }
    }
}

/// One flagged `(segment, window)` pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowFinding {
    /// Segment name.
    pub segment: String,
    /// Window start, ns.
    pub window_start_ns: u64,
    /// Window mean estimate, ns.
    pub mean_ns: f64,
    /// Ratio to the segment's median window mean.
    pub severity: f64,
}

/// Per-segment windowed series built from estimate records.
#[derive(Debug, Clone)]
pub struct SegmentWindows {
    /// Segment name.
    pub name: String,
    series: BinnedSeries,
}

impl SegmentWindows {
    /// Bin a segment's estimate records.
    pub fn build(name: impl Into<String>, records: &[EstimateRecord], window_ns: u64) -> Self {
        let mut series = BinnedSeries::new(window_ns);
        for r in records {
            series.record(r.at.as_nanos(), r.est_ns);
        }
        SegmentWindows {
            name: name.into(),
            series,
        }
    }

    /// Mean estimate per window (`None` for empty windows).
    pub fn window_means(&self) -> Vec<Option<f64>> {
        (0..self.series.len())
            .map(|i| self.series.mean(i))
            .collect()
    }

    /// The underlying series.
    pub fn series(&self) -> &BinnedSeries {
        &self.series
    }
}

/// Detect anomalous windows across segments. Findings sorted by severity.
pub fn localize_windows(segments: &[SegmentWindows], cfg: &WindowedConfig) -> Vec<WindowFinding> {
    let mut findings = Vec::new();
    for seg in segments {
        // Baseline: the segment's own median window mean (robust to the
        // anomaly windows themselves as long as they are a minority).
        let mut means: Vec<f64> = (0..seg.series.len())
            .filter(|&i| seg.series.count(i) >= cfg.min_samples)
            .filter_map(|i| seg.series.mean(i))
            .collect();
        if means.len() < 3 {
            continue;
        }
        means.sort_by(|a, b| a.partial_cmp(b).expect("finite means"));
        let median = means[means.len() / 2];
        if median <= 0.0 {
            continue;
        }
        for i in 0..seg.series.len() {
            if seg.series.count(i) < cfg.min_samples {
                continue;
            }
            let Some(mean) = seg.series.mean(i) else {
                continue;
            };
            let severity = mean / median;
            if severity > cfg.factor {
                findings.push(WindowFinding {
                    segment: seg.name.clone(),
                    window_start_ns: i as u64 * cfg.window_ns,
                    mean_ns: mean,
                    severity,
                });
            }
        }
    }
    findings.sort_by(|a, b| b.severity.partial_cmp(&a.severity).expect("finite"));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::time::SimTime;
    use rlir_net::FlowKey;
    use std::net::Ipv4Addr;

    fn rec(at_us: u64, est_ns: f64) -> EstimateRecord {
        EstimateRecord {
            at: SimTime::from_micros(at_us),
            flow: FlowKey::udp(Ipv4Addr::new(10, 0, 0, 1), 1, Ipv4Addr::new(10, 1, 0, 1), 2),
            est_ns,
            truth_ns: None,
        }
    }

    fn steady_with_spike() -> Vec<EstimateRecord> {
        // 100 ms of estimates every 20 µs: ~5 µs delays, except a spike to
        // 200 µs during [40 ms, 45 ms).
        (0..5000u64)
            .map(|i| {
                let t_us = i * 20;
                let est = if (40_000..45_000).contains(&t_us) {
                    200_000.0
                } else {
                    5_000.0 + (i % 7) as f64 * 100.0
                };
                rec(t_us, est)
            })
            .collect()
    }

    #[test]
    fn finds_the_spike_window() {
        let seg = SegmentWindows::build("T0→C0", &steady_with_spike(), 5_000_000);
        let findings = localize_windows(&[seg], &WindowedConfig::default());
        assert!(!findings.is_empty(), "spike not found");
        let top = &findings[0];
        assert_eq!(top.segment, "T0→C0");
        assert_eq!(top.window_start_ns, 40_000_000, "wrong window");
        assert!(top.severity > 10.0);
        // Only the spike window is flagged.
        assert_eq!(findings.len(), 1, "{findings:?}");
    }

    #[test]
    fn steady_traffic_raises_nothing() {
        let records: Vec<EstimateRecord> = (0..5000u64).map(|i| rec(i * 20, 5_000.0)).collect();
        let seg = SegmentWindows::build("s", &records, 5_000_000);
        assert!(localize_windows(&[seg], &WindowedConfig::default()).is_empty());
    }

    #[test]
    fn sparse_windows_not_judged() {
        // Only 3 estimates total: below min_samples everywhere.
        let records = vec![rec(0, 1.0), rec(10_000, 1e9), rec(20_000, 1.0)];
        let seg = SegmentWindows::build("s", &records, 5_000_000);
        assert!(localize_windows(&[seg], &WindowedConfig::default()).is_empty());
    }

    #[test]
    fn multiple_segments_ranked_by_severity() {
        let quiet: Vec<EstimateRecord> = (0..5000u64).map(|i| rec(i * 20, 4_000.0)).collect();
        let seg_quiet = SegmentWindows::build("quiet", &quiet, 5_000_000);
        let seg_spiky = SegmentWindows::build("spiky", &steady_with_spike(), 5_000_000);
        let findings = localize_windows(&[seg_quiet, seg_spiky], &WindowedConfig::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].segment, "spiky");
    }

    #[test]
    fn window_means_expose_series() {
        let seg = SegmentWindows::build("s", &steady_with_spike(), 5_000_000);
        let means = seg.window_means();
        assert_eq!(means.len(), 20); // 100 ms / 5 ms
        assert!(means[8].unwrap() > 50_000.0, "spike window mean");
        assert!(means[0].unwrap() < 10_000.0);
    }
}
