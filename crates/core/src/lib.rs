//! # rlir — Reference Latency Interpolation across Routers
//!
//! The paper's primary contribution (Singh, Lee, Kumar, Kompella,
//! Hot-ICE 2011): flow-level latency measurement in data centers with RLI
//! instances deployed at only *some* routers (ToR uplinks + cores of a
//! fat-tree), trading localization granularity for deployment cost.
//!
//! * [`capture`] — two-point capture taps: per-flow latency as the
//!   timestamp delta of the *same packet* at two fabric points (RFC 1242,
//!   matched on 5-tuple + IP ident) — the external ground truth trace
//!   replay scores RLI against.
//! * [`demux`] — the receiver-side demultiplexer of §3.1: origin-ToR
//!   identification by IP prefix matching (upstream) and traversed-core
//!   identification by ToS packet marking or reverse-ECMP computation
//!   (downstream), plus the naive no-association ablation.
//! * [`detect`] — the closed-loop online detector: CUSUM/EWMA change
//!   detection over the plane's settled epochs, with an engine-termination
//!   hook so time-to-localize is measured mid-run.
//! * [`deployment`] — instance placement and reference-stream engineering
//!   ("each sender sends reference packets to all intermediate receivers").
//! * [`fabric`] — materialises the fat-tree on the event-driven simulator,
//!   with core marking support.
//! * [`localization`] — segment-level latency-anomaly localization, the
//!   operator-facing purpose of the architecture.
//! * [`plane`] — the per-hop measurement plane: attachable RLI taps over
//!   the simulator's hop-event stream, one estimator instance per
//!   `(node, port)` observation point, with fabric-wide localization.
//! * [`windowed`] — time-windowed anomaly detection over per-packet
//!   estimate logs (transient microbursts, not just run-level means).
//! * [`experiment`] — the evaluation harnesses (two-hop pipeline for
//!   Figs. 4–5, full fat-tree for the demux/localization studies).
//!
//! ## Quickstart
//!
//! ```
//! use rlir::experiment::{run_two_hop, TwoHopConfig, CrossSpec};
//! use rlir_net::time::SimDuration;
//!
//! let mut cfg = TwoHopConfig::paper(42, SimDuration::from_millis(30));
//! cfg.cross = CrossSpec::Uniform { target_utilization: 0.8 };
//! let out = run_two_hop(&cfg);
//! assert!(out.flows.flow_count() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod capture;
pub mod demux;
pub mod deployment;
pub mod detect;
pub mod experiment;
pub mod fabric;
pub mod localization;
pub mod plane;
pub mod windowed;

pub use capture::{CapturePair, CaptureReport, FlowCapture, DEFAULT_CAPTURE_TIMEOUT};
pub use demux::{core_from_mark, core_mark, CoreDemux, RlirDemux};
pub use deployment::{engineer_ref_key, CoreSenderSpec, Deployment, TorSenderSpec};
pub use detect::{ClosedLoopSink, Detection, DetectorConfig, EpochDetector};
pub use fabric::{build_network, FatTreeFabric};
pub use localization::{localize, AnomalyFinding, LocalizerConfig, SegmentObservation};
pub use plane::{
    localize_epoch_series, DrainMode, EpochFindings, MeasurementPlane, PlaneConfig, PlaneReport,
    StateLayout, TapPoint, TapReport, TapSpec, TruthRef, DEFAULT_REORDER_WINDOW, TANDEM_SW1,
    TANDEM_SW2,
};
pub use windowed::{localize_windows, SegmentWindows, WindowFinding, WindowedConfig};
