//! Latency-anomaly localization.
//!
//! The point of the whole architecture: "Detecting and localizing
//! latency-related problems at router and switch levels" (§1) at the
//! granularity RLIR's partial deployment affords — *segments* between
//! measurement instances (e.g. `T1→C1` and `C1→T7` instead of each of the
//! five switches on the path).
//!
//! The detector is deliberately simple and robust: a segment is anomalous
//! when its estimated mean latency exceeds a robust baseline (the median
//! across comparable segments) by a configurable factor. That is exactly the
//! operator workflow the paper targets: the per-segment estimates isolate
//! *which* upgraded-router-to-upgraded-router hop misbehaves.

use serde::{Deserialize, Serialize};

/// One measured segment's aggregate latency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SegmentObservation {
    /// Printable segment name, e.g. `"T[0.0]→C[1.0]"`.
    pub name: String,
    /// Estimated mean latency over the observation window, ns.
    pub est_mean_ns: f64,
    /// True mean latency (simulation ground truth), ns.
    pub true_mean_ns: f64,
    /// Packets contributing to the estimate.
    pub packets: u64,
}

/// An anomaly verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnomalyFinding {
    /// Index into the observation slice.
    pub segment: usize,
    /// Segment name (copied for convenience).
    pub name: String,
    /// Ratio of the segment's estimate to the baseline median.
    pub severity: f64,
}

/// Detector configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalizerConfig {
    /// A segment is anomalous when `est_mean > factor × median(est_means)`.
    pub factor: f64,
    /// Segments with fewer packets than this are not judged (too noisy).
    pub min_packets: u64,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        LocalizerConfig {
            factor: 3.0,
            min_packets: 10,
        }
    }
}

/// Find anomalous segments; results sorted by descending severity.
pub fn localize(observations: &[SegmentObservation], cfg: &LocalizerConfig) -> Vec<AnomalyFinding> {
    let eligible: Vec<(usize, &SegmentObservation)> = observations
        .iter()
        .enumerate()
        .filter(|(_, o)| o.packets >= cfg.min_packets && o.est_mean_ns.is_finite())
        .collect();
    if eligible.len() < 2 {
        return Vec::new();
    }
    let mut means: Vec<f64> = eligible.iter().map(|(_, o)| o.est_mean_ns).collect();
    means.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = means[means.len() / 2];
    if median <= 0.0 {
        return Vec::new();
    }
    let mut findings: Vec<AnomalyFinding> = eligible
        .into_iter()
        .filter_map(|(i, o)| {
            let severity = o.est_mean_ns / median;
            (severity > cfg.factor).then(|| AnomalyFinding {
                segment: i,
                name: o.name.clone(),
                severity,
            })
        })
        .collect();
    findings.sort_by(|a, b| b.severity.partial_cmp(&a.severity).expect("finite"));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(name: &str, est: f64, pkts: u64) -> SegmentObservation {
        SegmentObservation {
            name: name.to_string(),
            est_mean_ns: est,
            true_mean_ns: est,
            packets: pkts,
        }
    }

    #[test]
    fn flags_the_slow_segment() {
        let observations = vec![
            obs("T0→C0", 3000.0, 100),
            obs("T0→C1", 3200.0, 100),
            obs("C0→T7", 2900.0, 100),
            obs("C1→T7", 250_000.0, 100), // injected anomaly
        ];
        let findings = localize(&observations, &LocalizerConfig::default());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].segment, 3);
        assert_eq!(findings[0].name, "C1→T7");
        assert!(findings[0].severity > 50.0);
    }

    #[test]
    fn healthy_segments_produce_no_findings() {
        let observations = vec![
            obs("a", 3000.0, 100),
            obs("b", 3500.0, 100),
            obs("c", 2800.0, 100),
        ];
        assert!(localize(&observations, &LocalizerConfig::default()).is_empty());
    }

    #[test]
    fn low_traffic_segments_not_judged() {
        let observations = vec![
            obs("a", 3000.0, 100),
            obs("b", 3000.0, 100),
            obs("noisy", 1e9, 2), // huge but only 2 packets
        ];
        assert!(localize(&observations, &LocalizerConfig::default()).is_empty());
    }

    #[test]
    fn multiple_anomalies_sorted_by_severity() {
        let observations = vec![
            obs("a", 1000.0, 100),
            obs("b", 1000.0, 100),
            obs("c", 1000.0, 100),
            obs("bad1", 10_000.0, 100),
            obs("bad2", 50_000.0, 100),
        ];
        let findings = localize(&observations, &LocalizerConfig::default());
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].name, "bad2");
        assert_eq!(findings[1].name, "bad1");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(localize(&[], &LocalizerConfig::default()).is_empty());
        assert!(localize(&[obs("only", 1e9, 100)], &LocalizerConfig::default()).is_empty());
        let zeros = vec![obs("a", 0.0, 100), obs("b", 0.0, 100)];
        assert!(localize(&zeros, &LocalizerConfig::default()).is_empty());
    }
}
