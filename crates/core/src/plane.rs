//! The per-hop measurement plane.
//!
//! The paper's deployment model is an RLI instance *at every upgraded
//! router* (§3, Fig. 10): operators attach estimator instances to
//! individual devices and segments so latency faults can be localized to a
//! hop, not just noticed end-to-end. [`MeasurementPlane`] is that layer for
//! the simulator: any number of RLI estimator instances (sender
//! interleaving feeds them over the fabric; receiver interpolation from
//! `rlir-rli` runs inside them) attach to arbitrary taps of the engine's
//! [`HopEvent`] stream — a switch ingress, a `(node, port)` egress, or a
//! host-facing delivery point — each with dense per-flow state
//! ([`FlowTable`](rlir_rli::FlowTable)) and optional simulation ground
//! truth for evaluation.
//!
//! A tap is an [`RliReceiver`] plus the wiring that a real deployment would
//! configure out of band: which observation point it sits on
//! ([`TapPoint`]), which sender's reference stream it locks onto, which
//! regular packets it meters ([`TapSpec::meter`]), and — simulation only —
//! which ground-truth span to score against ([`TruthRef`]).
//!
//! ## Streaming, bounded-memory ordering
//!
//! Receivers require time-ordered input, but taps reconstructing upstream
//! crossings from [`HopKind::Deliver`] events see observations *out of*
//! observation-time order (a packet delivered late may have crossed the tap
//! early). The plane's default drain is **streaming**
//! ([`DrainMode::Streaming`]): out-of-order observations wait in a bounded
//! reorder window keyed by `(observation time, tie, packet id)` and are fed
//! to the receiver as soon as the engine's event-time **watermark**
//! ([`HopSink::on_watermark`]) passes `observation time + window`. Because
//! an observation's lag behind the watermark is bounded by the packet's
//! residence time downstream of the tap (see the watermark contract in
//! `rlir-sim`), a window wider than the worst-case downstream residence
//! yields exactly the total order the old post-hoc sort produced — with
//! peak memory O(window), not O(run), and estimates available *while the
//! simulation runs*. Observations that still arrive late (window too small
//! for the workload) are counted in [`TapReport::late`], never fed out of
//! order.
//!
//! The pre-streaming behaviour — buffer everything, sort once at
//! [`MeasurementPlane::finish`] — is retained as the differential oracle
//! behind [`DrainMode::BufferedSort`]; `tests/epoch_streaming_differential.rs`
//! pins the two paths byte-identical.
//!
//! Taps whose feed is already time-ordered (live [`TapPoint::NodeArrival`]
//! taps, delivery-sorted tandem feeds) can set [`TapSpec::ordered`] and
//! stream straight into the receiver with no buffering at all.
//!
//! ## Live taps and drop awareness
//!
//! [`TapSpec::new`] defaults to a **live** tap (`delivered_only = false`):
//! the instance sees every crossing at its point, including packets that
//! later die downstream — what a real device-resident instance observes.
//! The plane watches the engine's drop events and counts, per tap (and per
//! epoch when epochs are on), the metered packets that died downstream
//! after being observed ([`TapReport::dropped_metered`],
//! [`EpochSnapshot::dropped_after_metering`]) — the estimates a
//! delivered-gated evaluation would silently exclude.
//!
//! Evaluation harnesses that score only packets with end-to-end ground
//! truth (the paper's methodology) opt back in with
//! [`TapSpec::delivered_only`]` = true`; the observation is then
//! reconstructed from the [`HopKind::Deliver`] event's hop record.
//!
//! ## Epochs
//!
//! With [`PlaneConfig::epoch`] set, every tap's receiver aggregates into
//! per-epoch [`EpochSnapshot`]s keyed by observation time — the bounded
//! per-epoch export a deployed router streams to a collector — and
//! [`PlaneReport::localize_epochs`] ranks segments *per epoch*, giving
//! anomaly onset times instead of whole-run presence.

use crate::localization::{localize, AnomalyFinding, LocalizerConfig, SegmentObservation};
use rlir_net::clock::ClockModel;
use rlir_net::fxhash::FxHashMap;
use rlir_net::packet::{ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{
    merge_epoch_series, EpochSnapshot, FlowArena, Interpolator, ReceiverConfig, ReceiverReport,
    RliReceiver,
};
use rlir_sim::pipeline::Delivery;
use rlir_sim::{
    CalendarQueue, EventSchedule, FaultEvent, FaultKind, Hop, HopEvent, HopKind, HopSink, NodeId,
    PortId,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Where on the hop-event stream a tap sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapPoint {
    /// Switch ingress: the instant a packet arrives at the node. This is
    /// where the paper's core-router receivers sit (references are
    /// timestamped on arrival, before local queueing).
    NodeArrival(NodeId),
    /// Port egress: the instant a packet's last bit leaves `(node, port)`.
    PortDeparture(NodeId, PortId),
    /// Host-facing delivery at the node — where the destination-ToR
    /// receiver sits.
    Delivery(NodeId),
}

impl TapPoint {
    /// The node this tap observes.
    pub fn node(&self) -> NodeId {
        match *self {
            TapPoint::NodeArrival(n) | TapPoint::PortDeparture(n, _) | TapPoint::Delivery(n) => n,
        }
    }
}

/// Which ground-truth span a tap scores its estimates against
/// (`None` in deployment — truth is a simulation-only input).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TruthRef {
    /// No ground truth: estimates are recorded unscored.
    #[default]
    NoTruth,
    /// Injection → observation (the upstream segment from the sender).
    SinceInjection,
    /// First traversed hop from this node set → observation (e.g. "since
    /// the core": the downstream segment). Unscored if no listed node was
    /// traversed.
    SinceArrivalAt(Vec<NodeId>),
}

/// Decides whether a tap meters a given regular packet (receives the full
/// hop event, marks applied). `None` meters everything at the point.
///
/// **Live-tap contract**: on a live (non-`delivered_only`) tap the meter
/// is consulted twice per dying packet — once with the crossing event
/// (arrive/dequeue) when metering, and once with the downstream
/// `QueueDrop`/`RouteDrop` event when attributing the death. The two
/// events describe the same packet but differ in `kind`/`node`/`at`, so a
/// live-tap meter must decide from *packet-stable* fields (flow, marks,
/// size) for the drop accounting to agree with the metering decision.
/// Delivered-gated taps (where the meter sees the `Deliver` event only)
/// are unaffected.
pub type MeterFn<'a> = Box<dyn Fn(&HopEvent<'_>) -> bool + 'a>;

/// Filters/rewrites reference packets before the receiver sees them —
/// RLIR's receiver-side demultiplexing decides which reference *stream* an
/// observation point listens to (§3.1). `None` passes references through
/// unchanged (the receiver still ignores senders it is not bound to).
pub type RefMapFn<'a> = Box<dyn Fn(&ReferenceInfo) -> Option<ReferenceInfo> + 'a>;

/// How buffered (non-[`TapSpec::ordered`]) taps hand observations to their
/// receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrainMode {
    /// Bounded reorder window driven by the engine watermark (the
    /// default): observations are fed online, in observation-time order,
    /// as soon as the watermark clears them; peak memory is O(window).
    Streaming {
        /// Width of the reorder window. Must exceed the worst-case
        /// residence time between any tap and the event that reports its
        /// observation (for delivered-gated taps: the downstream path
        /// delay — queue drain caps + processing + links). Too-small
        /// windows surface as [`TapReport::late`], never as reordered
        /// input.
        reorder_window: SimDuration,
    },
    /// The pre-streaming differential oracle: buffer every observation and
    /// sort once at [`MeasurementPlane::finish`]. O(run) memory,
    /// delivery-gated output timing — kept behind this flag for the
    /// byte-identity tests and benchmarks.
    BufferedSort,
}

/// Default reorder window: the evaluation topologies bound any tap's
/// observation lag by a few queue residences (512 KiB @ OC-192 drains in
/// ≈ 420 µs, plus per-hop processing and µs links), so 4 ms covers the
/// worst case — including the 400 µs localization faults — with headroom.
pub const DEFAULT_REORDER_WINDOW: SimDuration = SimDuration::from_micros(4_000);

impl Default for DrainMode {
    fn default() -> Self {
        DrainMode::Streaming {
            reorder_window: DEFAULT_REORDER_WINDOW,
        }
    }
}

/// How the plane lays out its hot per-tap state.
///
/// The fleet-scale question: with an RLI instance at *every* router
/// (§3's deployment model), does plane state grow with tap count or with
/// live observations? [`StateLayout::SharedArena`] — the default — pools
/// flow accumulators into one plane-wide [`FlowArena`] keyed `(tap, flow)`
/// and all streaming reorder windows into one shared calendar wheel keyed
/// `(at, tie, id, tap)`, so fixed traffic costs the same no matter how
/// many taps watch it. [`StateLayout::PerTap`] is the original private
/// `FlowTable` + `BinaryHeap`-per-tap layout, retained as the
/// differential oracle: `tests/plane_arena_differential.rs` pins the two
/// byte-identical per tap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StateLayout {
    /// One shared flow arena + one shared reorder wheel across all taps
    /// (the fleet-scale default).
    #[default]
    SharedArena,
    /// A private flow table and reorder heap per tap (the pre-PR-8
    /// layout; differential oracle).
    PerTap,
}

/// Which tenant a tap belongs to (an operator-assigned opaque id).
///
/// The plane's multi-tenant dimension: several measurement customers —
/// different teams, different tools — share one fabric's hop-event
/// stream, and the plane's [`PlaneConfig::pending_budget`] becomes a
/// *hierarchy*: the plane-wide cap is split into per-tenant weighted
/// shares (set via [`MeasurementPlane::set_tenant_weight`]; unseen
/// tenants default to weight 1) with work-conserving borrowing: a tenant
/// under its share is always admitted; one over its share may borrow
/// headroom only while every other tenant's unused share remains
/// *reserved*. A flooding tenant therefore inflates only its own
/// [`TenantReport::shed`] — it can never displace another tenant's
/// guaranteed share, and the isolation tests pin a victim tenant's epoch
/// estimates byte-identical with and without the flood. Every tap
/// defaults to tenant `0`; a single-tenant plane reproduces the flat
/// budget's admissions bit-for-bit.
pub type TenantId = u32;

/// Plane-wide configuration shared by every attached tap.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlaneConfig {
    /// Drain strategy for buffered taps.
    pub drain: DrainMode,
    /// Hot-state layout across taps (see [`StateLayout`]).
    pub layout: StateLayout,
    /// Epoch width: when set, every tap's receiver additionally aggregates
    /// per-epoch [`EpochSnapshot`]s and the report carries per-tap latency
    /// time-series. `None` keeps whole-run aggregates only.
    pub epoch: Option<SimDuration>,
    /// Global pending-observation budget across **all** taps — the plane's
    /// graceful-degradation knob for continuous operation. When the total
    /// number of buffered observations reaches the budget, further regular
    /// observations are shed at the offering tap (counted in
    /// [`TapReport::shed`] and as unestimated in the receiver's books,
    /// exactly like the per-tap [`TapSpec::max_buffer`] cap); references
    /// are still admitted, so estimation quality degrades instead of
    /// collapsing. `None` (the default) leaves only the per-tap caps.
    /// Applies to [`DrainMode::Streaming`]; the buffered-sort oracle is
    /// O(run) by design and ignores it.
    ///
    /// With more than one [`TenantId`] attached the budget is
    /// *hierarchical*: the cap is divided into per-tenant weighted shares
    /// with work-conserving borrowing (see [`TenantId`] and
    /// [`MeasurementPlane::set_tenant_weight`]). With every tap in the
    /// default tenant this reduces exactly to the flat cap.
    pub pending_budget: Option<usize>,
}

impl PlaneConfig {
    /// The epoch width in nanoseconds (clamped to ≥ 1 ns), if epochs are
    /// on — the single source of truth for epoch indexing across the
    /// receivers, the drop-accounting join, and the report.
    pub fn epoch_ns(&self) -> Option<u64> {
        self.epoch.map(|e| e.as_nanos().max(1))
    }
}

/// Full configuration of one attached tap.
pub struct TapSpec<'a> {
    /// Printable name (segment names feed [`SegmentObservation`]).
    pub name: String,
    /// Observation point.
    pub point: TapPoint,
    /// The reference stream this tap's receiver locks onto.
    pub sender: SenderId,
    /// Ground-truth span for evaluation.
    pub truth: TruthRef,
    /// Score only packets that ultimately exit the network (see module
    /// docs). Default `false`: a device-resident instance sees every
    /// crossing. Evaluation harnesses that need end-to-end truth set it.
    pub delivered_only: bool,
    /// The feed is already time-ordered: stream into the receiver without
    /// buffering. Only sound for live [`TapPoint::NodeArrival`] taps and
    /// externally-sorted feeds. Default `false`.
    pub ordered: bool,
    /// The receiver's local clock.
    pub clock: ClockModel,
    /// Delay estimator.
    pub interpolator: Interpolator,
    /// Buffer cap, applied **per reorder window**: bounds both the plane's
    /// pending-observation buffer for this tap and the receiver's
    /// interpolation buffer. Regular observations shed by the cap are
    /// counted as seen-but-unestimated (per epoch, when epochs are on) in
    /// [`TapReport::shed`]; references are always admitted (they are the
    /// estimation substrate and a vanishing fraction of traffic).
    pub max_buffer: usize,
    /// Track a per-flow delay quantile (P² estimator), e.g. `Some(0.9)`.
    pub track_quantile: Option<f64>,
    /// Regular-packet admission rule.
    pub meter: Option<MeterFn<'a>>,
    /// Reference filter/rewrite rule.
    pub ref_map: Option<RefMapFn<'a>>,
    /// Which tenant's budget share this tap draws on (see [`TenantId`]).
    /// Default `0` — every tap in one tenant reproduces the flat budget.
    pub tenant: TenantId,
}

impl<'a> TapSpec<'a> {
    /// A tap with the deployment defaults: **live** (sees every crossing,
    /// drop-aware), buffered through the plane's drain, perfect clock,
    /// linear interpolation, 4M-observation buffer cap, truth since
    /// injection.
    pub fn new(name: impl Into<String>, point: TapPoint, sender: SenderId) -> Self {
        TapSpec {
            name: name.into(),
            point,
            sender,
            truth: TruthRef::SinceInjection,
            delivered_only: false,
            ordered: false,
            clock: ClockModel::perfect(),
            interpolator: Interpolator::Linear,
            max_buffer: 1 << 22,
            track_quantile: None,
            meter: None,
            ref_map: None,
            tenant: 0,
        }
    }
}

/// One buffered observation, keyed for the deterministic drain order.
enum Payload {
    Reference(ReferenceInfo),
    Regular {
        flow: FlowKey,
        truth: Option<SimDuration>,
    },
}

/// A pending observation in the reorder window, min-ordered by
/// `(observation time, tie, packet id)` — the exact total order the
/// buffered-sort oracle produces.
struct PendingObs {
    key: (SimTime, u64, u64),
    payload: Payload,
}

impl PartialEq for PendingObs {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for PendingObs {}
impl PartialOrd for PendingObs {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingObs {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Tie key of a shared-wheel entry: `(tie, packet id, tap)`. With the
/// wheel's time dimension in front, entries drain in `(at, tie, id, tap)`
/// order — whose per-tap projection is exactly the per-tap heap's
/// `(at, tie, id)` order, so the shared drain feeds every receiver the
/// byte-identical sequence.
type WheelKey = (u64, u64, u32);

/// What the shared reorder wheel moves: the owning tap plus the payload
/// (time and tie live in the wheel's own key). `generation` stamps the
/// tap's crash epoch at push time: a [`tap_down`] bumps the tap's
/// generation and the wheel's stale entries — already accounted as
/// [`TapReport::lost_window_obs`] — are discarded lazily at pop, without
/// an O(wheel) sweep on the fault path.
///
/// [`tap_down`]: MeasurementPlane::tap_down
struct WheelObs {
    tap: u32,
    generation: u32,
    payload: Payload,
}

struct TapState<'a> {
    spec: TapSpec<'a>,
    rx: RliReceiver,
    /// Streaming mode, [`StateLayout::PerTap`]: the private reorder heap.
    window: BinaryHeap<Reverse<PendingObs>>,
    /// Streaming mode, [`StateLayout::SharedArena`]: this tap's share of
    /// the wheel's population (drives the per-tap `max_buffer` cap and
    /// `peak_pending` exactly as `window.len()` does in the per-tap
    /// layout).
    pending: usize,
    /// Oracle mode: the unbounded buffered-sort backlog.
    backlog: Vec<((SimTime, u64, u64), Payload)>,
    /// Observations with `at` below this are late (window too small).
    flushed_to: SimTime,
    /// High-water mark of buffered observations (window or backlog).
    peak_pending: usize,
    /// Observations that arrived after their window was flushed.
    late: u64,
    /// Regular observations shed by the per-window buffer cap.
    shed: u64,
    /// Metered packets that died downstream after being observed.
    dropped_metered: u64,
    /// Per-epoch downstream deaths (epoch index → count).
    drops_by_epoch: FxHashMap<u64, u64>,
    /// Index into the plane's tenant table (resolved at attach).
    tenant_slot: usize,
    /// True between a [`FaultKind::TapDown`] and its matching `TapUp`:
    /// the measurement instance is crashed and observes nothing.
    down: bool,
    /// Crash epoch; bumped at every `TapDown` so stale shared-wheel
    /// entries can be recognized and discarded lazily.
    generation: u32,
    /// After a recovery, observations before this time are discarded
    /// (cold restart resumes on a clean epoch boundary). `ZERO` for taps
    /// that never crashed — a no-op bound.
    resume_at: SimTime,
    /// The epoch index recovery resumed at (last outage wins); drives
    /// [`TapReport::recovered_epochs`].
    resume_epoch: Option<u64>,
    /// Observations destroyed by outages: window/backlog entries freed at
    /// crash, receiver buffer destroyed by the cold reset, and stream
    /// observations that arrived while the tap was down (or before its
    /// post-recovery resume boundary).
    lost_window_obs: u64,
    /// Completed `TapDown` transitions.
    outages: u32,
}

impl TapState<'_> {
    fn note_pending(&mut self, len: usize) {
        if len > self.peak_pending {
            self.peak_pending = len;
        }
    }
}

/// Plane-wide pending-observation accounting (streaming drain only): the
/// live total across every tap's reorder window, and its high-water mark —
/// what the global [`PlaneConfig::pending_budget`] bounds.
#[derive(Debug, Clone, Copy, Default)]
struct PendingTotals {
    pending: usize,
    peak: usize,
}

/// One tenant's live budget state (see [`TenantId`]).
#[derive(Debug, Clone, Copy)]
struct TenantState {
    id: TenantId,
    weight: u64,
    /// This tenant's guaranteed slice of the plane-wide cap:
    /// `cap × weight / Σweights` (recomputed at attach/weight change).
    share: usize,
    /// Live buffered observations across the tenant's taps (references
    /// included, mirroring the plane-wide total).
    pending: usize,
    peak_pending: usize,
    /// Regular observations that reached the admission decision.
    offered: u64,
    /// Regulars admitted into a reorder window.
    admitted: u64,
    /// Regulars shed (per-tap cap or budget hierarchy).
    shed: u64,
}

impl TenantState {
    fn new(id: TenantId) -> Self {
        TenantState {
            id,
            weight: 1,
            share: 0,
            pending: 0,
            peak_pending: 0,
            offered: 0,
            admitted: 0,
            shed: 0,
        }
    }
}

/// Final output of one tap.
pub struct TapReport {
    /// The tap's name.
    pub name: String,
    /// Where it sat.
    pub point: TapPoint,
    /// The reference stream it was bound to.
    pub sender: SenderId,
    /// Receiver output: dense per-flow table, counters, per-epoch series,
    /// optional per-packet log.
    pub report: ReceiverReport,
    /// High-water mark of observations buffered for this tap — O(reorder
    /// window) under [`DrainMode::Streaming`], O(run) under the oracle.
    pub peak_pending: usize,
    /// Observations that arrived after their reorder window was already
    /// flushed (counted, never fed out of order). Nonzero means the
    /// configured window is narrower than the workload's real reordering.
    pub late: u64,
    /// Regular observations shed by the per-window buffer cap
    /// ([`TapSpec::max_buffer`]); also counted as unestimated in the
    /// receiver's (per-epoch) counters.
    pub shed: u64,
    /// Metered packets that died downstream of the observation point after
    /// being observed — the live tap's drop-awareness (always zero on
    /// delivered-gated taps).
    pub dropped_metered: u64,
    /// The tenant this tap drew budget from.
    pub tenant: TenantId,
    /// Observations destroyed by tap outages: buffered window/backlog
    /// entries freed at crash time, receiver-internal buffer destroyed by
    /// the cold restart, and stream observations that arrived while the
    /// tap was down or before its post-recovery epoch boundary. The
    /// estimation error attributable to the outage is *measured*, never
    /// silently folded into other counters.
    pub lost_window_obs: u64,
    /// Non-empty epochs this tap produced at-or-after its last recovery
    /// boundary — zero for taps that never crashed, nonzero proof that a
    /// cold restart resumed producing mergeable epoch snapshots.
    pub recovered_epochs: u64,
    /// Completed [`FaultKind::TapDown`] transitions this tap absorbed.
    pub outages: u32,
}

impl TapReport {
    /// The tap folded into a segment-level observation, when it produced
    /// scored estimates.
    pub fn segment(&self) -> Option<SegmentObservation> {
        match (
            self.report.flows.aggregate_est_mean(),
            self.report.flows.aggregate_true_mean(),
        ) {
            (Some(est), Some(truth)) => Some(SegmentObservation {
                name: self.name.clone(),
                est_mean_ns: est,
                true_mean_ns: truth,
                packets: self.report.counters.estimated,
            }),
            _ => None,
        }
    }

    /// The tap's per-epoch latency time-series (empty unless
    /// [`PlaneConfig::epoch`] was set).
    pub fn epochs(&self) -> &[EpochSnapshot] {
        &self.report.epochs
    }
}

/// Segment rankings of one epoch (see [`PlaneReport::localize_epochs`]).
#[derive(Debug, Clone)]
pub struct EpochFindings {
    /// Epoch index.
    pub epoch: u64,
    /// Epoch start time.
    pub start: SimTime,
    /// Anomaly findings within the epoch, descending severity.
    pub findings: Vec<AnomalyFinding>,
}

/// Final per-tenant budget accounting (see [`TenantId`]).
#[derive(Debug, Clone, Copy)]
pub struct TenantReport {
    /// The tenant id.
    pub id: TenantId,
    /// Its configured weight.
    pub weight: u64,
    /// Its guaranteed share of the plane-wide cap (0 when no budget was
    /// configured).
    pub share: usize,
    /// Regular observations that reached the admission decision.
    pub offered: u64,
    /// Regulars admitted into a reorder window. Per tenant,
    /// `admitted + shed == offered`.
    pub admitted: u64,
    /// Regulars shed by per-tap caps or the budget hierarchy.
    pub shed: u64,
    /// High-water mark of this tenant's buffered observations.
    pub peak_pending: usize,
}

/// Everything the plane measured, in tap-attachment order.
pub struct PlaneReport {
    /// Per-tap reports.
    pub taps: Vec<TapReport>,
    /// Per-tenant budget accounting, in first-seen order (tenant `0`
    /// first on a default plane). Tenants are tracked even without a
    /// configured budget, so the shed/admitted books are always present.
    pub tenants: Vec<TenantReport>,
    /// The epoch width the plane ran with, ns.
    pub epoch_ns: Option<u64>,
    /// High-water mark of pending observations summed across **all** taps
    /// (streaming drain only; zero under the buffered-sort oracle) — the
    /// quantity [`PlaneConfig::pending_budget`] bounds, and the soak
    /// harness's flat-memory witness alongside the engine's
    /// `peak_live_slots`.
    pub peak_pending_total: usize,
}

impl PlaneReport {
    /// Segment observations of every tap that produced scored estimates,
    /// in tap order — the localizer's input.
    pub fn segments(&self) -> Vec<SegmentObservation> {
        self.taps.iter().filter_map(|t| t.segment()).collect()
    }

    /// Fabric-wide localization: rank hops whose estimated latency stands
    /// out from the fabric median (descending severity).
    pub fn localize(&self, cfg: &LocalizerConfig) -> Vec<AnomalyFinding> {
        localize(&self.segments(), cfg)
    }

    /// Per-epoch localization: rank segments within every epoch that has
    /// estimates, yielding anomaly **onset** (first flagged epoch), not
    /// just whole-run presence. Empty unless the plane ran with epochs.
    pub fn localize_epochs(&self, cfg: &LocalizerConfig) -> Vec<EpochFindings> {
        let Some(epoch_ns) = self.epoch_ns else {
            return Vec::new();
        };
        let series: Vec<(&str, &[EpochSnapshot])> = self
            .taps
            .iter()
            .map(|t| (t.name.as_str(), t.epochs()))
            .collect();
        localize_epoch_series(&series, epoch_ns, cfg)
    }

    /// Highest per-tap buffered-observation high-water mark — the quantity
    /// the streaming refactor bounds to O(reorder window).
    pub fn max_peak_pending(&self) -> usize {
        self.taps.iter().map(|t| t.peak_pending).max().unwrap_or(0)
    }

    /// Regular observations shed across every tap (per-tap caps plus the
    /// global [`PlaneConfig::pending_budget`]).
    pub fn total_shed(&self) -> u64 {
        self.taps.iter().map(|t| t.shed).sum()
    }
}

/// Rank segments per epoch from named epoch series — the epoch-level
/// counterpart of [`localize`], shared by [`PlaneReport::localize_epochs`]
/// and the experiment harnesses that carry per-segment series in their
/// outcomes. Epochs with fewer than two estimating segments produce no
/// findings (no baseline to compare against).
pub fn localize_epoch_series(
    series: &[(&str, &[EpochSnapshot])],
    epoch_ns: u64,
    cfg: &LocalizerConfig,
) -> Vec<EpochFindings> {
    let lo = series
        .iter()
        .filter_map(|(_, s)| s.first().map(|e| e.epoch))
        .min();
    let hi = series
        .iter()
        .filter_map(|(_, s)| s.last().map(|e| e.epoch))
        .max();
    let (Some(lo), Some(hi)) = (lo, hi) else {
        return Vec::new();
    };
    (lo..=hi)
        .filter_map(|epoch| {
            let segs: Vec<SegmentObservation> = series
                .iter()
                .filter_map(|(name, s)| {
                    let snap = s
                        .iter()
                        .find(|e| e.epoch == epoch)
                        .filter(|e| e.estimated > 0)?;
                    Some(SegmentObservation {
                        name: (*name).to_string(),
                        est_mean_ns: snap.est_mean()?,
                        true_mean_ns: snap.true_mean().unwrap_or(f64::NAN),
                        packets: snap.estimated,
                    })
                })
                .collect();
            if segs.is_empty() {
                return None;
            }
            Some(EpochFindings {
                epoch,
                start: SimTime::from_nanos(epoch * epoch_ns),
                findings: localize(&segs, cfg),
            })
        })
        .collect()
}

/// Synthetic node ids for the two-switch tandem feed
/// ([`MeasurementPlane::observe_tandem`]).
pub const TANDEM_SW1: NodeId = 0;
/// Second (bottleneck) tandem switch — where tandem deliveries happen.
pub const TANDEM_SW2: NodeId = 1;

/// Attachable RLI taps over the engine's hop-event stream. Implements
/// [`HopSink`], so a plane *is* the sink argument of
/// [`rlir_sim::run_network_with`].
#[derive(Default)]
pub struct MeasurementPlane<'a> {
    cfg: PlaneConfig,
    taps: Vec<TapState<'a>>,
    live_seq: u64,
    /// Whether any tap is live (`!delivered_only`). Arrive/dequeue events
    /// dominate the engine's stream; when every tap is delivered-gated
    /// (the evaluation default) they short-circuit without scanning taps.
    has_live_taps: bool,
    /// Last watermark seen from the engine.
    watermark: SimTime,
    /// Next watermark at which the streaming drain scans the taps
    /// (half-window granularity: keeps the per-event cost at one branch
    /// while bounding pending growth to 1.5 windows).
    next_flush: SimTime,
    /// Plane-wide pending accounting for the global budget.
    totals: PendingTotals,
    /// Per-tenant budget state, in first-seen order (see [`TenantId`]).
    tenants: Vec<TenantState>,
    /// [`StateLayout::SharedArena`]: the plane-wide flow-accumulator store
    /// (one arena tap handle per plane tap, same index).
    arena: FlowArena,
    /// [`StateLayout::SharedArena`]: the shared reorder wheel replacing
    /// every per-tap heap — the watermark drain is one keyed pass.
    wheel: CalendarQueue<WheelObs, WheelKey>,
    /// Routing indices: which taps observe each point. Built at attach
    /// time so an event consults only its matching taps — O(matches), not
    /// O(taps) — which is what lets an all-ports deployment scale.
    live_arrival: FxHashMap<NodeId, Vec<u32>>,
    live_departure: FxHashMap<(NodeId, PortId), Vec<u32>>,
    gated_arrival: FxHashMap<NodeId, Vec<u32>>,
    gated_departure: FxHashMap<(NodeId, PortId), Vec<u32>>,
    deliver_at: FxHashMap<NodeId, Vec<u32>>,
    /// Reused candidate buffer for multi-index events (deliver/drop).
    scratch: Vec<u32>,
}

impl<'a> MeasurementPlane<'a> {
    /// An empty plane with the default configuration (streaming drain,
    /// default reorder window, no epochs).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty plane with an explicit configuration.
    pub fn with_config(cfg: PlaneConfig) -> Self {
        // Size the shared wheel's rotation to the reorder window:
        // observations are pushed up to a full window past the watermark,
        // so the default 1 ms rotation would send most of a 4 ms window
        // to the overflow heap and the wheel would degenerate into the
        // very per-tap BinaryHeap it replaces. Keep 1024 buckets and
        // widen them until one rotation covers ~2 windows.
        let wheel = match cfg.drain {
            DrainMode::Streaming { reorder_window } => {
                let window_ns = reorder_window.as_nanos().max(1);
                let mut bucket_ns_log2 = 10u32; // 1 µs, the default geometry
                while (1u64 << (bucket_ns_log2 + 10)) < window_ns.saturating_mul(2) {
                    bucket_ns_log2 += 1;
                }
                CalendarQueue::with_geometry(bucket_ns_log2.min(39), 10)
            }
            DrainMode::BufferedSort => CalendarQueue::default(),
        };
        MeasurementPlane {
            cfg,
            wheel,
            ..Self::default()
        }
    }

    /// The plane's configuration.
    pub fn config(&self) -> PlaneConfig {
        self.cfg
    }

    /// Set a tenant's budget weight (creating the tenant if unseen) and
    /// recompute every tenant's guaranteed share. Taps register their
    /// tenant at [`attach`](MeasurementPlane::attach) with weight 1; call
    /// this before or after attaching to skew the split. Shares divide
    /// [`PlaneConfig::pending_budget`] as `cap × weight / Σweights`
    /// (integer floor, so Σshares ≤ cap and borrowing headroom exists).
    pub fn set_tenant_weight(&mut self, tenant: TenantId, weight: u64) {
        let slot = self.tenant_slot(tenant);
        self.tenants[slot].weight = weight.max(1);
        self.recompute_shares();
    }

    /// The tenant's slot in first-seen order, creating it at weight 1.
    fn tenant_slot(&mut self, tenant: TenantId) -> usize {
        if let Some(i) = self.tenants.iter().position(|t| t.id == tenant) {
            return i;
        }
        self.tenants.push(TenantState::new(tenant));
        self.recompute_shares();
        self.tenants.len() - 1
    }

    fn recompute_shares(&mut self) {
        let Some(cap) = self.cfg.pending_budget else {
            return;
        };
        let total: u64 = self.tenants.iter().map(|t| t.weight).sum();
        if total == 0 {
            return;
        }
        for t in &mut self.tenants {
            t.share = ((cap as u64).saturating_mul(t.weight) / total) as usize;
        }
    }

    /// Attach a tap; returns its index (reports come back in attachment
    /// order).
    pub fn attach(&mut self, spec: TapSpec<'a>) -> usize {
        let rx = {
            let cfg = ReceiverConfig {
                sender: spec.sender,
                clock: spec.clock,
                interpolator: spec.interpolator,
                max_buffer: spec.max_buffer,
                record_estimates: false,
                epoch_ns: self.cfg.epoch_ns(),
            };
            match spec.track_quantile {
                Some(p) => RliReceiver::with_quantile(cfg, p),
                None => RliReceiver::new(cfg),
            }
        };
        self.has_live_taps |= !spec.delivered_only;
        let idx = self.taps.len() as u32;
        if self.cfg.layout == StateLayout::SharedArena {
            let handle = self.arena.register_tap(spec.track_quantile);
            debug_assert_eq!(handle, idx, "arena handle is the tap index");
        }
        // Route the tap: which event lookups reach it (mirrors the match
        // arms in `on_hop` exactly; `Delivery` taps observe deliveries at
        // their node regardless of the delivered_only flag).
        match (spec.delivered_only, spec.point) {
            (_, TapPoint::Delivery(n)) => self.deliver_at.entry(n).or_default().push(idx),
            (false, TapPoint::NodeArrival(n)) => self.live_arrival.entry(n).or_default().push(idx),
            (false, TapPoint::PortDeparture(n, p)) => {
                self.live_departure.entry((n, p)).or_default().push(idx)
            }
            (true, TapPoint::NodeArrival(n)) => self.gated_arrival.entry(n).or_default().push(idx),
            (true, TapPoint::PortDeparture(n, p)) => {
                self.gated_departure.entry((n, p)).or_default().push(idx)
            }
        }
        let tenant_slot = self.tenant_slot(spec.tenant);
        self.taps.push(TapState {
            spec,
            rx,
            window: BinaryHeap::new(),
            pending: 0,
            backlog: Vec::new(),
            flushed_to: SimTime::ZERO,
            peak_pending: 0,
            late: 0,
            shed: 0,
            dropped_metered: 0,
            drops_by_epoch: FxHashMap::default(),
            tenant_slot,
            down: false,
            generation: 0,
            resume_at: SimTime::ZERO,
            resume_epoch: None,
            lost_window_obs: 0,
            outages: 0,
        });
        self.taps.len() - 1
    }

    /// Number of attached taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Name of tap `idx` (attachment order) — lets streaming consumers
    /// (e.g. an online detector) label findings without waiting for
    /// [`MeasurementPlane::finish`].
    pub fn tap_name(&self, idx: usize) -> &str {
        &self.taps[idx].spec.name
    }

    /// The per-epoch snapshots tap `idx` has produced *so far* — a
    /// streaming consumer can read the series mid-run, before
    /// [`MeasurementPlane::finish`].
    pub fn epoch_series(&self, idx: usize) -> impl Iterator<Item = &EpochSnapshot> {
        self.taps[idx].rx.epoch_snapshots()
    }

    /// Feed one tandem-pipeline delivery (the two-switch topology of
    /// Fig. 3) as a hop event: switch 1 is [`TANDEM_SW1`], deliveries
    /// happen at [`TANDEM_SW2`]. Deliveries arrive in delivery-time order,
    /// so this feed self-advances the watermark, and a single
    /// [`TapPoint::Delivery`]`(TANDEM_SW2)` tap may set
    /// [`TapSpec::ordered`] and stream with no buffering at all.
    pub fn observe_tandem(&mut self, d: &Delivery) {
        if d.delivered_at > self.watermark {
            self.on_watermark(d.delivered_at);
        }
        let hop_buf;
        let hops: &[Hop] = match d.sw1_egress {
            Some(egress) => {
                hop_buf = [Hop {
                    node: TANDEM_SW1,
                    port: 0,
                    arrived: d.sent_at,
                    departed: egress,
                }];
                &hop_buf
            }
            None => &[],
        };
        let injected_node = if d.sw1_egress.is_some() {
            TANDEM_SW1
        } else {
            TANDEM_SW2
        };
        self.on_hop(&HopEvent {
            kind: HopKind::Deliver,
            node: TANDEM_SW2,
            at: d.delivered_at,
            packet: &d.packet,
            injected_node,
            injected_at: d.sent_at,
            hops,
        });
    }

    /// Route one observation into tap `idx` at observation time `at` with
    /// tie-break key `(tie, id)`.
    #[allow(clippy::too_many_arguments)]
    fn observe(
        taps: &mut [TapState<'a>],
        cfg: PlaneConfig,
        totals: &mut PendingTotals,
        tenants: &mut [TenantState],
        arena: &mut FlowArena,
        wheel: &mut CalendarQueue<WheelObs, WheelKey>,
        idx: usize,
        at: SimTime,
        tie: u64,
        ev: &HopEvent<'_>,
    ) {
        let drain = cfg.drain;
        let tap = &mut taps[idx];
        let payload = match ev.packet.reference_info() {
            Some(info) => {
                let mapped = match &tap.spec.ref_map {
                    Some(f) => f(info),
                    None => Some(*info),
                };
                match mapped {
                    Some(info) => Payload::Reference(info),
                    None => return,
                }
            }
            None if ev.packet.is_regular() => {
                if let Some(meter) = &tap.spec.meter {
                    if !meter(ev) {
                        return;
                    }
                }
                let truth = match &tap.spec.truth {
                    TruthRef::NoTruth => None,
                    TruthRef::SinceInjection => Some(at.saturating_since(ev.injected_at)),
                    TruthRef::SinceArrivalAt(nodes) => ev
                        .hops
                        .iter()
                        .find(|h| nodes.contains(&h.node))
                        .map(|h| at.saturating_since(h.arrived)),
                };
                Payload::Regular {
                    flow: ev.packet.flow,
                    truth,
                }
            }
            // Cross traffic is invisible to the measurement plane.
            None => return,
        };
        if tap.down {
            // The measurement instance is crashed: the crossing happened,
            // nothing observed it. Accounted, never estimated.
            tap.lost_window_obs += 1;
            return;
        }
        if at < tap.resume_at {
            // Recovered mid-epoch: discard until the resume boundary so
            // the cold restart produces clean whole-epoch snapshots.
            tap.lost_window_obs += 1;
            return;
        }
        if tap.spec.ordered {
            feed_into(cfg.layout, arena, &mut tap.rx, idx as u32, at, &payload);
            return;
        }
        match drain {
            DrainMode::Streaming { .. } => {
                if at < tap.flushed_to {
                    // The window for this observation time already closed:
                    // feeding it would hand the receiver time-travelling
                    // input. Count it and move on.
                    tap.late += 1;
                    return;
                }
                let slot = tap.tenant_slot;
                if let Payload::Regular { .. } = payload {
                    tenants[slot].offered += 1;
                }
                let buffered = match cfg.layout {
                    StateLayout::SharedArena => tap.pending,
                    StateLayout::PerTap => tap.window.len(),
                };
                // Hierarchical budget: a tenant under its guaranteed
                // share is always admitted; one at-or-over its share may
                // borrow free headroom only while every other tenant's
                // unused share stays reserved — so Σ(admissions) never
                // exceeds the cap and no flood can displace a guaranteed
                // share. With one tenant, share == cap and the rule is
                // bit-identical to the flat `pending >= budget` check.
                let over_budget = cfg.pending_budget.is_some_and(|cap| {
                    tenants[slot].pending >= tenants[slot].share && {
                        let reserved: usize = tenants
                            .iter()
                            .map(|t| t.share.saturating_sub(t.pending))
                            .sum();
                        totals.pending + reserved >= cap
                    }
                });
                if buffered >= tap.spec.max_buffer || over_budget {
                    if let Payload::Regular { .. } = payload {
                        // Per-window cap or exhausted budget share: shed
                        // the observation but keep the books honest — it
                        // was seen at the point and will never be
                        // estimated.
                        tap.shed += 1;
                        tenants[slot].shed += 1;
                        tap.rx.on_shed(at);
                        return;
                    }
                    // References are always admitted (see TapSpec docs).
                }
                if let Payload::Regular { .. } = payload {
                    tenants[slot].admitted += 1;
                }
                let len = match cfg.layout {
                    StateLayout::SharedArena => {
                        wheel.push_keyed(
                            at,
                            (tie, ev.packet.id.0, idx as u32),
                            WheelObs {
                                tap: idx as u32,
                                generation: tap.generation,
                                payload,
                            },
                        );
                        tap.pending += 1;
                        tap.pending
                    }
                    StateLayout::PerTap => {
                        tap.window.push(Reverse(PendingObs {
                            key: (at, tie, ev.packet.id.0),
                            payload,
                        }));
                        tap.window.len()
                    }
                };
                totals.pending += 1;
                if totals.pending > totals.peak {
                    totals.peak = totals.pending;
                }
                tenants[slot].pending += 1;
                if tenants[slot].pending > tenants[slot].peak_pending {
                    tenants[slot].peak_pending = tenants[slot].pending;
                }
                tap.note_pending(len);
            }
            DrainMode::BufferedSort => {
                tap.backlog.push(((at, tie, ev.packet.id.0), payload));
                let len = tap.backlog.len();
                tap.note_pending(len);
            }
        }
    }

    /// Pop-and-feed every pending observation strictly below `bound`, in
    /// `(at, tie, id)` order ([`StateLayout::PerTap`] streaming drain).
    fn flush_tap(
        tap: &mut TapState<'a>,
        totals: &mut PendingTotals,
        tenants: &mut [TenantState],
        bound: SimTime,
    ) {
        while let Some(Reverse(top)) = tap.window.peek() {
            if top.key.0 >= bound {
                break;
            }
            let Reverse(obs) = tap.window.pop().expect("peeked");
            totals.pending = totals.pending.saturating_sub(1);
            let t = &mut tenants[tap.tenant_slot];
            t.pending = t.pending.saturating_sub(1);
            feed(&mut tap.rx, obs.key.0, &obs.payload);
        }
        if bound > tap.flushed_to {
            tap.flushed_to = bound;
        }
    }

    /// Single-pass shared-wheel drain ([`StateLayout::SharedArena`]): pop
    /// every entry strictly below `bound` in global `(at, tie, id, tap)`
    /// order — each tap sees exactly its per-tap `(at, tie, id)` sequence —
    /// then advance every unordered tap's lateness bound.
    fn flush_wheel(&mut self, bound: SimTime) {
        while self.wheel.peek_at().is_some_and(|t| t < bound) {
            let (at, _, obs) = self.wheel.pop_keyed().expect("peeked");
            let tap = &mut self.taps[obs.tap as usize];
            if obs.generation != tap.generation {
                // Pushed before a crash of this tap: its pending count was
                // already zeroed (and the loss accounted) at TapDown time.
                continue;
            }
            tap.pending -= 1;
            self.totals.pending = self.totals.pending.saturating_sub(1);
            let t = &mut self.tenants[tap.tenant_slot];
            t.pending = t.pending.saturating_sub(1);
            feed_into(
                StateLayout::SharedArena,
                &mut self.arena,
                &mut tap.rx,
                obs.tap,
                at,
                &obs.payload,
            );
        }
        for tap in &mut self.taps {
            if !tap.spec.ordered && bound > tap.flushed_to {
                tap.flushed_to = bound;
            }
        }
    }

    /// Count a metered packet of live tap `idx` that died downstream after
    /// crossing the tap at `at`.
    fn note_drop(tap: &mut TapState<'a>, epoch_ns: Option<u64>, at: SimTime) {
        tap.dropped_metered += 1;
        if let Some(e) = epoch_ns {
            *tap.drops_by_epoch.entry(at.as_nanos() / e).or_insert(0) += 1;
        }
    }

    /// Crash every tap at `node`: its reorder-window slice is discarded
    /// (shared-wheel entries lazily, via the generation stamp), its
    /// shared-arena flow handles are freed back to the [`FlowArena`], and
    /// its receiver is cold-reset — everything destroyed is accounted in
    /// [`TapReport::lost_window_obs`]. Until the matching
    /// [`tap_up`](MeasurementPlane::tap_up), crossings at the point are
    /// counted as lost, never observed. Delivered automatically from
    /// scripted [`FaultKind::TapDown`] events via [`HopSink::on_fault`];
    /// public so harnesses can drive outages directly.
    pub fn tap_down(&mut self, at: SimTime, node: NodeId) {
        let _ = at; // the crash takes effect immediately; time is in the script
        let streaming = matches!(self.cfg.drain, DrainMode::Streaming { .. });
        for idx in 0..self.taps.len() {
            if self.taps[idx].spec.point.node() != node || self.taps[idx].down {
                continue;
            }
            let tap = &mut self.taps[idx];
            tap.down = true;
            tap.outages += 1;
            tap.generation = tap.generation.wrapping_add(1);
            let freed = if streaming {
                match self.cfg.layout {
                    StateLayout::SharedArena => std::mem::take(&mut tap.pending),
                    StateLayout::PerTap => {
                        let n = tap.window.len();
                        tap.window.clear();
                        n
                    }
                }
            } else {
                let n = tap.backlog.len();
                tap.backlog.clear();
                n
            };
            let destroyed = tap.rx.reset_cold();
            tap.lost_window_obs += freed as u64 + destroyed;
            let slot = tap.tenant_slot;
            if streaming {
                self.totals.pending = self.totals.pending.saturating_sub(freed);
                let t = &mut self.tenants[slot];
                t.pending = t.pending.saturating_sub(freed);
            }
            if self.cfg.layout == StateLayout::SharedArena {
                self.arena.release_tap(idx as u32);
            }
        }
    }

    /// Recover every downed tap at `node`, cold: estimation resumes at
    /// the next epoch boundary at-or-after `at` (at `at` itself when the
    /// plane runs without epochs), so the restarted instance produces
    /// clean whole-epoch snapshots that merge into its pre-crash series
    /// via the ordinary [`EpochSnapshot`] machinery. Observations between
    /// `at` and the boundary are counted in
    /// [`TapReport::lost_window_obs`]. The counterpart of
    /// [`tap_down`](MeasurementPlane::tap_down).
    pub fn tap_up(&mut self, at: SimTime, node: NodeId) {
        let epoch_ns = self.cfg.epoch_ns();
        for tap in &mut self.taps {
            if tap.spec.point.node() != node || !tap.down {
                continue;
            }
            tap.down = false;
            let resume_ns = match epoch_ns {
                Some(e) => at.as_nanos().div_ceil(e).saturating_mul(e),
                None => at.as_nanos(),
            };
            tap.resume_at = SimTime::from_nanos(resume_ns);
            if let Some(e) = epoch_ns {
                tap.resume_epoch = Some(resume_ns / e);
            }
        }
    }

    /// Point-in-time plane-wide epoch view: merge every tap's per-epoch
    /// snapshots produced *so far* into one series (dense union of the
    /// epoch ranges), without stopping the run — the snapshot-query a
    /// collector polls against a live fabric. Empty unless
    /// [`PlaneConfig::epoch`] is set.
    pub fn snapshot_epochs(&self) -> Vec<EpochSnapshot> {
        let Some(epoch_ns) = self.cfg.epoch_ns() else {
            return Vec::new();
        };
        let per_tap: Vec<Vec<EpochSnapshot>> = self
            .taps
            .iter()
            .map(|t| t.rx.epoch_snapshots().cloned().collect())
            .collect();
        let slices: Vec<&[EpochSnapshot]> = per_tap.iter().map(Vec::as_slice).collect();
        merge_epoch_series(&slices, epoch_ns)
    }

    /// Mid-run per-epoch localization over the snapshots produced so far
    /// (see [`PlaneReport::localize_epochs`] for the post-run variant).
    /// Empty unless the plane runs with epochs.
    pub fn localize_now(&self, cfg: &LocalizerConfig) -> Vec<EpochFindings> {
        let Some(epoch_ns) = self.cfg.epoch_ns() else {
            return Vec::new();
        };
        let per_tap: Vec<(&str, Vec<EpochSnapshot>)> = self
            .taps
            .iter()
            .map(|t| {
                (
                    t.spec.name.as_str(),
                    t.rx.epoch_snapshots().cloned().collect(),
                )
            })
            .collect();
        let series: Vec<(&str, &[EpochSnapshot])> = per_tap
            .iter()
            .map(|(name, s)| (*name, s.as_slice()))
            .collect();
        localize_epoch_series(&series, epoch_ns, cfg)
    }

    /// Approximate bytes of plane hot state right now: flow accumulators
    /// plus buffered observations (windows or backlogs). Diagnostic — the
    /// bench's sublinearity witness, not an allocator.
    pub fn approx_state_bytes(&self) -> usize {
        let obs = std::mem::size_of::<PendingObs>();
        let wheel_entry =
            std::mem::size_of::<WheelObs>() + std::mem::size_of::<(u64, WheelKey, u64)>();
        let mut bytes = match self.cfg.layout {
            StateLayout::SharedArena => self.arena.approx_bytes() + self.wheel.len() * wheel_entry,
            StateLayout::PerTap => self
                .taps
                .iter()
                .map(|t| t.rx.flows().approx_bytes() + t.window.len() * obs)
                .sum(),
        };
        for t in &self.taps {
            bytes += t.backlog.capacity() * obs;
        }
        bytes
    }

    /// Drain every tap (deterministic order) and finish every receiver.
    pub fn finish(mut self) -> PlaneReport {
        let epoch_ns = self.cfg.epoch_ns();
        let peak_pending_total = self.totals.peak;
        let layout = self.cfg.layout;
        // Drain what is still pending. The shared wheel drains globally
        // keyed (per-tap projection identical to per-tap pops); backlogs
        // are inherently per-tap in both layouts.
        if let DrainMode::Streaming { .. } = self.cfg.drain {
            if layout == StateLayout::SharedArena {
                self.flush_wheel(SimTime::MAX);
            }
        }
        let mut arena = std::mem::take(&mut self.arena);
        for (i, t) in self.taps.iter_mut().enumerate() {
            match self.cfg.drain {
                DrainMode::Streaming { .. } => {
                    while let Some(Reverse(obs)) = t.window.pop() {
                        feed(&mut t.rx, obs.key.0, &obs.payload);
                    }
                }
                DrainMode::BufferedSort => {
                    t.backlog.sort_by_key(|(key, _)| *key);
                    let backlog = std::mem::take(&mut t.backlog);
                    for ((at, _, _), payload) in &backlog {
                        feed_into(layout, &mut arena, &mut t.rx, i as u32, *at, payload);
                    }
                }
            }
        }
        // Under the shared layout every estimate landed in the arena; tear
        // it apart into per-tap tables bit-identical to private ones.
        let mut tables = (layout == StateLayout::SharedArena).then(|| arena.into_tables());
        let tenants = self
            .tenants
            .iter()
            .map(|t| TenantReport {
                id: t.id,
                weight: t.weight,
                share: t.share,
                offered: t.offered,
                admitted: t.admitted,
                shed: t.shed,
                peak_pending: t.peak_pending,
            })
            .collect();
        let taps = self
            .taps
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let mut report = t.rx.finish();
                if let Some(tables) = tables.as_mut() {
                    report.flows = std::mem::take(&mut tables[i]);
                }
                if let (Some(e), false) = (epoch_ns, t.drops_by_epoch.is_empty()) {
                    // Join the plane's downstream-death counts into the
                    // receiver's epoch series (dense union of the ranges).
                    let mut drop_epochs: Vec<EpochSnapshot> = t
                        .drops_by_epoch
                        .iter()
                        .map(|(&epoch, &count)| {
                            let mut s = EpochSnapshot::empty(epoch, e);
                            s.dropped_after_metering = count;
                            s
                        })
                        .collect();
                    drop_epochs.sort_by_key(|s| s.epoch);
                    report.epochs = merge_epoch_series(&[&report.epochs, &drop_epochs], e);
                }
                // Non-empty epochs at-or-after the last recovery boundary:
                // proof the cold restart resumed producing snapshots.
                let recovered_epochs = t.resume_epoch.map_or(0, |re| {
                    report
                        .epochs
                        .iter()
                        .filter(|s| s.epoch >= re && !s.is_empty())
                        .count() as u64
                });
                TapReport {
                    name: t.spec.name,
                    point: t.spec.point,
                    sender: t.spec.sender,
                    report,
                    peak_pending: t.peak_pending,
                    late: t.late,
                    shed: t.shed,
                    dropped_metered: t.dropped_metered,
                    tenant: t.spec.tenant,
                    lost_window_obs: t.lost_window_obs,
                    recovered_epochs,
                    outages: t.outages,
                }
            })
            .collect();
        PlaneReport {
            taps,
            tenants,
            epoch_ns,
            peak_pending_total,
        }
    }
}

fn feed(rx: &mut RliReceiver, at: SimTime, payload: &Payload) {
    match payload {
        Payload::Reference(info) => rx.on_reference(at, info),
        Payload::Regular { flow, truth } => rx.on_regular(at, *flow, *truth),
    }
}

/// [`feed`] with the per-flow aggregation routed by layout: under
/// [`StateLayout::SharedArena`] reference-closed estimates land in the
/// plane-wide arena under this tap's handle; under
/// [`StateLayout::PerTap`] in the receiver's private table.
fn feed_into(
    layout: StateLayout,
    arena: &mut FlowArena,
    rx: &mut RliReceiver,
    tap: u32,
    at: SimTime,
    payload: &Payload,
) {
    match payload {
        Payload::Reference(info) => match layout {
            StateLayout::SharedArena => rx.on_reference_record(at, info, |flow, est, truth| {
                arena.record(tap, flow, est, truth)
            }),
            StateLayout::PerTap => rx.on_reference(at, info),
        },
        Payload::Regular { flow, truth } => rx.on_regular(at, *flow, *truth),
    }
}

impl HopSink for MeasurementPlane<'_> {
    fn on_watermark(&mut self, watermark: SimTime) {
        self.watermark = watermark;
        let DrainMode::Streaming { reorder_window } = self.cfg.drain else {
            return;
        };
        if watermark < self.next_flush {
            return;
        }
        let bound = SimTime::from_nanos(
            watermark
                .as_nanos()
                .saturating_sub(reorder_window.as_nanos()),
        );
        match self.cfg.layout {
            StateLayout::SharedArena => self.flush_wheel(bound),
            StateLayout::PerTap => {
                for tap in &mut self.taps {
                    if !tap.spec.ordered {
                        Self::flush_tap(tap, &mut self.totals, &mut self.tenants, bound);
                    }
                }
            }
        }
        self.next_flush = watermark + SimDuration::from_nanos(reorder_window.as_nanos() / 2 + 1);
    }

    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        match ev.kind {
            HopKind::Arrive => {
                if !self.has_live_taps {
                    return; // every tap is delivered-gated: nothing to do
                }
                self.live_seq += 1;
                let tie = self.live_seq;
                if let Some(idxs) = self.live_arrival.get(&ev.node) {
                    for &i in idxs {
                        Self::observe(
                            &mut self.taps,
                            self.cfg,
                            &mut self.totals,
                            &mut self.tenants,
                            &mut self.arena,
                            &mut self.wheel,
                            i as usize,
                            ev.at,
                            tie,
                            ev,
                        );
                    }
                }
            }
            HopKind::Dequeue { port, .. } => {
                if !self.has_live_taps {
                    return;
                }
                self.live_seq += 1;
                let tie = self.live_seq;
                if let Some(idxs) = self.live_departure.get(&(ev.node, port)) {
                    for &i in idxs {
                        Self::observe(
                            &mut self.taps,
                            self.cfg,
                            &mut self.totals,
                            &mut self.tenants,
                            &mut self.arena,
                            &mut self.wheel,
                            i as usize,
                            ev.at,
                            tie,
                            ev,
                        );
                    }
                }
            }
            HopKind::Deliver => {
                let delivered = ev.at.as_nanos();
                // Candidates from the routing indices; sorted+deduped tap
                // ids reproduce the old full scan's attachment order.
                let mut cand = std::mem::take(&mut self.scratch);
                cand.clear();
                if let Some(v) = self.deliver_at.get(&ev.node) {
                    cand.extend_from_slice(v);
                }
                for h in ev.hops {
                    if let Some(v) = self.gated_arrival.get(&h.node) {
                        cand.extend_from_slice(v);
                    }
                    if let Some(v) = self.gated_departure.get(&(h.node, h.port)) {
                        cand.extend_from_slice(v);
                    }
                }
                cand.sort_unstable();
                cand.dedup();
                for &i in &cand {
                    let spec = &self.taps[i as usize].spec;
                    let at = match spec.point {
                        TapPoint::Delivery(n) if n == ev.node => Some(ev.at),
                        TapPoint::NodeArrival(n) if spec.delivered_only => {
                            ev.hops.iter().find(|h| h.node == n).map(|h| h.arrived)
                        }
                        TapPoint::PortDeparture(n, p) if spec.delivered_only => ev
                            .hops
                            .iter()
                            .find(|h| h.node == n && h.port == p)
                            .map(|h| h.departed),
                        _ => None,
                    };
                    if let Some(at) = at {
                        Self::observe(
                            &mut self.taps,
                            self.cfg,
                            &mut self.totals,
                            &mut self.tenants,
                            &mut self.arena,
                            &mut self.wheel,
                            i as usize,
                            at,
                            delivered,
                            ev,
                        );
                    }
                }
                self.scratch = cand;
            }
            // Drop events carry the live taps' drop-awareness: a packet
            // that dies here was already *observed* by every live tap it
            // crossed upstream — those estimates must be accounted, not
            // silently folded into delivered-only statistics.
            HopKind::QueueDrop { .. } | HopKind::RouteDrop => {
                if !self.has_live_taps || !ev.packet.is_regular() {
                    return;
                }
                let epoch_ns = self.cfg.epoch_ns();
                let mut cand = std::mem::take(&mut self.scratch);
                cand.clear();
                // The drop node itself counts: arrival there precedes the
                // fatal queue. Upstream crossings come from the hops.
                if let Some(v) = self.live_arrival.get(&ev.node) {
                    cand.extend_from_slice(v);
                }
                for h in ev.hops {
                    if let Some(v) = self.live_arrival.get(&h.node) {
                        cand.extend_from_slice(v);
                    }
                    if let Some(v) = self.live_departure.get(&(h.node, h.port)) {
                        cand.extend_from_slice(v);
                    }
                }
                cand.sort_unstable();
                cand.dedup();
                for &i in &cand {
                    let i = i as usize;
                    let spec = &self.taps[i].spec;
                    // Where (and when) did this live tap observe the dying
                    // packet?
                    let at = match spec.point {
                        TapPoint::NodeArrival(n) if n == ev.node => Some(ev.at),
                        TapPoint::NodeArrival(n) => {
                            ev.hops.iter().find(|h| h.node == n).map(|h| h.arrived)
                        }
                        TapPoint::PortDeparture(n, p) => ev
                            .hops
                            .iter()
                            .find(|h| h.node == n && h.port == p)
                            .map(|h| h.departed),
                        // Dropped packets are never delivered.
                        TapPoint::Delivery(_) => None,
                    };
                    let Some(at) = at else { continue };
                    if self.taps[i].down {
                        // A crashed instance never observed the crossing;
                        // there is no estimate to attribute the death to.
                        continue;
                    }
                    if let Some(meter) = &self.taps[i].spec.meter {
                        if !meter(ev) {
                            continue;
                        }
                    }
                    Self::note_drop(&mut self.taps[i], epoch_ns, at);
                }
                self.scratch = cand;
            }
            // Enqueue events carry no measurement semantics: RLI meters
            // what crosses a point, not what waits at it.
            HopKind::Enqueue { .. } => {}
        }
    }

    fn on_fault(&mut self, ev: &FaultEvent) {
        match ev.kind {
            FaultKind::TapDown { node } => self.tap_down(ev.at, node),
            FaultKind::TapUp { node } => self.tap_up(ev.at, node),
            // Network faults don't touch the plane directly: their effects
            // arrive through the hop-event stream itself.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::packet::Packet;
    use std::net::Ipv4Addr;

    fn fk(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            1,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        )
    }

    fn deliver_ev<'e>(
        packet: &'e Packet,
        hops: &'e [Hop],
        node: NodeId,
        at_ns: u64,
    ) -> HopEvent<'e> {
        HopEvent {
            kind: HopKind::Deliver,
            node,
            at: SimTime::from_nanos(at_ns),
            packet,
            injected_node: 0,
            injected_at: packet.created_at,
            hops,
        }
    }

    #[test]
    fn delivery_tap_estimates_and_scores_against_injection_truth() {
        let mut plane = MeasurementPlane::new();
        plane.attach(TapSpec::new("end", TapPoint::Delivery(2), SenderId(1)));
        let hops = [];
        let r0 = Packet::reference(10, fk(9), SenderId(1), 0, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&r0, &hops, 2, 100)); // delay 100
        let p = Packet::regular(11, fk(1), 700, SimTime::from_nanos(40));
        plane.on_hop(&deliver_ev(&p, &hops, 2, 150)); // truth 110
        let r1 = Packet::reference(12, fk(9), SenderId(1), 1, SimTime::from_nanos(60));
        plane.on_hop(&deliver_ev(&r1, &hops, 2, 200)); // delay 140
        let rep = plane.finish();
        assert_eq!(rep.taps.len(), 1);
        let flows = &rep.taps[0].report.flows;
        let acc = flows.get(&fk(1)).expect("metered");
        // left 100@100, right 140@200 → estimate at 150 = 120; truth 110.
        assert_eq!(acc.est.mean(), Some(120.0));
        assert_eq!(acc.truth.mean(), Some(110.0));
        let seg = rep.taps[0].segment().expect("scored");
        assert_eq!(seg.packets, 1);
    }

    #[test]
    fn delivered_only_node_tap_reconstructs_hop_crossings() {
        let mut plane = MeasurementPlane::new();
        let mut spec = TapSpec::new("mid", TapPoint::NodeArrival(1), SenderId(1));
        spec.truth = TruthRef::SinceInjection;
        spec.delivered_only = true;
        plane.attach(spec);
        // Packet injected at t=0, arrives node 1 at t=500, delivered 900.
        let hops = [
            Hop {
                node: 0,
                port: 0,
                arrived: SimTime::ZERO,
                departed: SimTime::from_nanos(400),
            },
            Hop {
                node: 1,
                port: 0,
                arrived: SimTime::from_nanos(500),
                departed: SimTime::from_nanos(800),
            },
        ];
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let rhops = [Hop {
            node: 1,
            port: 0,
            arrived: SimTime::from_nanos(100),
            departed: SimTime::from_nanos(150),
        }];
        plane.on_hop(&deliver_ev(&r0, &rhops, 2, 400)); // seen at node1 @100, delay 100
        let p = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&p, &hops, 2, 900)); // seen at node1 @500, truth 500
        let r1 = Packet::reference(3, fk(9), SenderId(1), 1, SimTime::from_nanos(500));
        let rhops1 = [Hop {
            node: 1,
            port: 0,
            arrived: SimTime::from_nanos(700),
            departed: SimTime::from_nanos(750),
        }];
        plane.on_hop(&deliver_ev(&r1, &rhops1, 2, 1000)); // seen @700, delay 200
        let rep = plane.finish();
        let acc = rep.taps[0].report.flows.get(&fk(1)).expect("metered");
        // left 100@100, right 200@700 → at 500: 100 + 100·(400/600) ≈ 166.67
        let est = acc.est.mean().unwrap();
        assert!((est - 166.666).abs() < 0.01, "est {est}");
        assert_eq!(acc.truth.mean(), Some(500.0));
        assert_eq!(rep.taps[0].dropped_metered, 0, "delivered-gated taps");
    }

    #[test]
    fn meter_and_ref_map_gate_the_tap() {
        let mut plane = MeasurementPlane::new();
        let mut spec = TapSpec::new("gated", TapPoint::Delivery(2), SenderId(7));
        // Only meter flow fk(1); rewrite every reference to sender 7.
        spec.meter = Some(Box::new(|ev| ev.packet.flow == fk(1)));
        spec.ref_map = Some(Box::new(|info| {
            Some(ReferenceInfo {
                sender: SenderId(7),
                ..*info
            })
        }));
        plane.attach(spec);
        let hops = [];
        let r0 = Packet::reference(1, fk(9), SenderId(3), 0, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&r0, &hops, 2, 100));
        let keep = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        let drop = Packet::regular(3, fk(2), 700, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&keep, &hops, 2, 150));
        plane.on_hop(&deliver_ev(&drop, &hops, 2, 160));
        let r1 = Packet::reference(4, fk(9), SenderId(3), 1, SimTime::from_nanos(100));
        plane.on_hop(&deliver_ev(&r1, &hops, 2, 200));
        let rep = plane.finish();
        let report = &rep.taps[0].report;
        assert_eq!(report.counters.refs_accepted, 2, "rewritten refs accepted");
        assert_eq!(report.counters.estimated, 1, "only fk(1) metered");
        assert!(report.flows.get(&fk(2)).is_none());
    }

    #[test]
    fn buffered_taps_sort_by_time_then_delivery_order() {
        // Observations arrive out of delivery order (as Deliver events do);
        // the drain must reorder by (at, delivered, id) — in both modes.
        for drain in [DrainMode::default(), DrainMode::BufferedSort] {
            let mut plane = MeasurementPlane::with_config(PlaneConfig {
                drain,
                epoch: None,
                ..PlaneConfig::default()
            });
            let mut spec = TapSpec::new("mid", TapPoint::NodeArrival(1), SenderId(1));
            spec.truth = TruthRef::NoTruth;
            spec.delivered_only = true;
            plane.attach(spec);
            let hop_at = |ns: u64| {
                [Hop {
                    node: 1,
                    port: 0,
                    arrived: SimTime::from_nanos(ns),
                    departed: SimTime::from_nanos(ns + 10),
                }]
            };
            // Regular seen at node1 @150 but delivered late (at 900).
            let p = Packet::regular(5, fk(1), 700, SimTime::ZERO);
            let h = hop_at(150);
            let late = deliver_ev(&p, &h, 2, 900);
            // References bracket it, delivered earlier.
            let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
            let h0 = hop_at(100);
            let r1 = Packet::reference(2, fk(9), SenderId(1), 1, SimTime::from_nanos(60));
            let h1 = hop_at(200);
            // Feed in "wrong" order: closing ref first.
            plane.on_hop(&deliver_ev(&r1, &h1, 2, 300));
            plane.on_hop(&late);
            plane.on_hop(&deliver_ev(&r0, &h0, 2, 250));
            let rep = plane.finish();
            let report = &rep.taps[0].report;
            assert_eq!(report.counters.estimated, 1, "packet bracketed after sort");
            // left delay 100@100, right delay 140@200 → at 150: 120.
            let acc = report.flows.get(&fk(1)).expect("metered");
            assert_eq!(acc.est.mean(), Some(120.0));
            assert_eq!(rep.taps[0].late, 0);
        }
    }

    #[test]
    fn two_live_taps_see_different_hops_of_one_event_stream() {
        let mut plane = MeasurementPlane::new();
        for node in [0usize, 1] {
            let mut spec =
                TapSpec::new(format!("n{node}"), TapPoint::NodeArrival(node), SenderId(1));
            spec.ordered = true;
            spec.truth = TruthRef::SinceInjection;
            plane.attach(spec);
        }
        fn arrive(packet: &Packet, node: NodeId, at_ns: u64) -> HopEvent<'_> {
            HopEvent {
                kind: HopKind::Arrive,
                node,
                at: SimTime::from_nanos(at_ns),
                packet,
                injected_node: 0,
                injected_at: packet.created_at,
                hops: &[],
            }
        }
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let p = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        let r1 = Packet::reference(3, fk(9), SenderId(1), 1, SimTime::from_nanos(100));
        // Node 0 sees everything early, node 1 sees it all 500 ns later.
        for (node, shift) in [(0usize, 0u64), (1, 500)] {
            plane.on_hop(&arrive(&r0, node, 10 + shift));
            plane.on_hop(&arrive(&p, node, 20 + shift));
            plane.on_hop(&arrive(&r1, node, 110 + shift));
        }
        let rep = plane.finish();
        assert_eq!(rep.taps.len(), 2);
        let m0 = rep.taps[0].report.flows.get(&fk(1)).unwrap().est.mean();
        let m1 = rep.taps[1].report.flows.get(&fk(1)).unwrap().est.mean();
        assert!(m1.unwrap() > m0.unwrap() + 400.0, "{m0:?} vs {m1:?}");
    }

    /// Build an Arrive event at `node`.
    fn arrive_ev<'e>(packet: &'e Packet, node: NodeId, at_ns: u64) -> HopEvent<'e> {
        HopEvent {
            kind: HopKind::Arrive,
            node,
            at: SimTime::from_nanos(at_ns),
            packet,
            injected_node: 0,
            injected_at: packet.created_at,
            hops: &[],
        }
    }

    #[test]
    fn watermark_streams_estimates_before_finish() {
        // The tentpole behaviour: with the watermark advancing, a live tap
        // produces per-epoch results *during* the run, bounded memory.
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::Streaming {
                reorder_window: SimDuration::from_nanos(500),
            },
            epoch: Some(SimDuration::from_nanos(1_000)),
            ..PlaneConfig::default()
        });
        let idx = plane.attach(TapSpec::new("live", TapPoint::NodeArrival(0), SenderId(1)));
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let p = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        let r1 = Packet::reference(3, fk(9), SenderId(1), 1, SimTime::from_nanos(100));
        plane.on_watermark(SimTime::from_nanos(100));
        plane.on_hop(&arrive_ev(&r0, 0, 100));
        plane.on_hop(&arrive_ev(&p, 0, 150));
        plane.on_hop(&arrive_ev(&r1, 0, 240));
        // Watermark far past the window: everything flushes, the estimate
        // exists mid-run.
        plane.on_watermark(SimTime::from_nanos(5_000));
        let estimated: u64 = plane.epoch_series(idx).map(|e| e.estimated).sum();
        assert_eq!(estimated, 1, "estimate must be produced before finish");
        let rep = plane.finish();
        assert_eq!(rep.taps[0].report.counters.estimated, 1);
        assert_eq!(rep.taps[0].late, 0);
        assert!(rep.taps[0].peak_pending <= 3);
    }

    #[test]
    fn late_observations_are_counted_not_fed() {
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::Streaming {
                reorder_window: SimDuration::from_nanos(10),
            },
            epoch: None,
            ..PlaneConfig::default()
        });
        let mut spec = TapSpec::new("mid", TapPoint::NodeArrival(1), SenderId(1));
        spec.delivered_only = true;
        plane.attach(spec);
        let hop = [Hop {
            node: 1,
            port: 0,
            arrived: SimTime::from_nanos(100),
            departed: SimTime::from_nanos(110),
        }];
        // Watermark sprints ahead: window for t=100 closes at 110.
        plane.on_watermark(SimTime::from_nanos(10_000));
        let p = Packet::regular(5, fk(1), 700, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&p, &hop, 2, 10_000)); // seen @100: late
        let rep = plane.finish();
        assert_eq!(rep.taps[0].late, 1);
        assert_eq!(rep.taps[0].report.counters.regulars_seen, 0);
    }

    #[test]
    fn window_cap_sheds_regulars_but_admits_references() {
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::default(),
            epoch: Some(SimDuration::from_nanos(100)),
            ..PlaneConfig::default()
        });
        let mut spec = TapSpec::new("capped", TapPoint::NodeArrival(0), SenderId(1));
        spec.max_buffer = 2;
        plane.attach(spec);
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        plane.on_hop(&arrive_ev(&r0, 0, 100));
        let regs: Vec<Packet> = (0..4)
            .map(|i| Packet::regular(10 + i, fk(1), 700, SimTime::ZERO))
            .collect();
        for (i, p) in regs.iter().enumerate() {
            plane.on_hop(&arrive_ev(p, 0, 110 + i as u64));
        }
        // The closing reference exceeds the cap but must be admitted.
        let r1 = Packet::reference(9, fk(9), SenderId(1), 1, SimTime::from_nanos(100));
        plane.on_hop(&arrive_ev(&r1, 0, 200));
        let rep = plane.finish();
        let tap = &rep.taps[0];
        assert_eq!(tap.shed, 3, "cap 2: ref + 1 regular fit, 3 shed");
        assert_eq!(tap.report.counters.refs_accepted, 2);
        assert_eq!(tap.report.counters.estimated, 1);
        // Shed observations are honest per-epoch unestimated counts.
        assert_eq!(tap.report.counters.regulars_seen, 4);
        assert_eq!(tap.report.counters.unestimated, 3);
        let epoch1 = &tap.report.epochs[0];
        assert_eq!(epoch1.epoch, 1);
        assert_eq!(epoch1.unestimated, 3);
    }

    #[test]
    fn live_tap_counts_downstream_deaths_per_epoch() {
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::default(),
            epoch: Some(SimDuration::from_nanos(1_000)),
            ..PlaneConfig::default()
        });
        plane.attach(TapSpec::new("live", TapPoint::NodeArrival(0), SenderId(1)));
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let p1 = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        let p2 = Packet::regular(3, fk(1), 700, SimTime::ZERO);
        let r1 = Packet::reference(4, fk(9), SenderId(1), 1, SimTime::from_nanos(200));
        plane.on_hop(&arrive_ev(&r0, 0, 100));
        plane.on_hop(&arrive_ev(&p1, 0, 150));
        plane.on_hop(&arrive_ev(&p2, 0, 160));
        plane.on_hop(&arrive_ev(&r1, 0, 300));
        // p2 dies downstream at node 1, having crossed node 0 at t=160.
        let crossed = [Hop {
            node: 0,
            port: 0,
            arrived: SimTime::from_nanos(160),
            departed: SimTime::from_nanos(170),
        }];
        plane.on_hop(&HopEvent {
            kind: HopKind::QueueDrop { port: 0 },
            node: 1,
            at: SimTime::from_nanos(260),
            packet: &p2,
            injected_node: 0,
            injected_at: SimTime::ZERO,
            hops: &crossed,
        });
        let rep = plane.finish();
        let tap = &rep.taps[0];
        // Both regulars were estimated — the tap is live.
        assert_eq!(tap.report.counters.estimated, 2);
        assert_eq!(tap.dropped_metered, 1);
        let epoch0 = tap
            .report
            .epochs
            .iter()
            .find(|e| e.epoch == 0)
            .expect("epoch 0 exists");
        assert_eq!(epoch0.dropped_after_metering, 1);
        assert_eq!(epoch0.estimated, 2);
    }

    #[test]
    fn epoch_localization_ranks_segments_per_epoch() {
        // Three delivery taps; tap "bad" spikes only in epoch 1 (so the
        // per-epoch median stays anchored by the two healthy segments).
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::default(),
            epoch: Some(SimDuration::from_nanos(10_000)),
            ..PlaneConfig::default()
        });
        for (name, node) in [("good-a", 2usize), ("good-b", 3), ("bad", 4)] {
            let mut spec = TapSpec::new(name, TapPoint::Delivery(node), SenderId(1));
            spec.truth = TruthRef::NoTruth;
            plane.attach(spec);
        }
        // One epoch of one tap: a reference bracket with the given path
        // delay, all deliveries inside [epoch_base, epoch_base + 10 µs).
        let mut id = 100u64;
        let mut feed_epoch = |node: NodeId, epoch_base: u64, delay: u64| {
            let tx0 = epoch_base + 100 - delay.min(epoch_base + 100);
            let r0 = Packet::reference(id, fk(9), SenderId(1), 0, SimTime::from_nanos(tx0));
            id += 1;
            plane.on_hop(&deliver_ev(&r0, &[], node, epoch_base + 100));
            for k in 0..12u64 {
                let p = Packet::regular(id, fk(1), 700, SimTime::from_nanos(epoch_base));
                id += 1;
                plane.on_hop(&deliver_ev(&p, &[], node, epoch_base + 200 + k * 20));
            }
            let tx1 = epoch_base + 500 - delay;
            let r1 = Packet::reference(id, fk(9), SenderId(1), 1, SimTime::from_nanos(tx1));
            id += 1;
            plane.on_hop(&deliver_ev(&r1, &[], node, epoch_base + 500));
        };
        for node in [2usize, 3, 4] {
            feed_epoch(node, 0, 100); // epoch 0: everyone healthy
        }
        feed_epoch(2, 10_000, 100);
        feed_epoch(3, 10_000, 100);
        feed_epoch(4, 10_000, 4_000); // the epoch-1 anomaly
        let rep = plane.finish();
        let cfg = LocalizerConfig {
            factor: 3.0,
            min_packets: 5,
        };
        let epochs = rep.localize_epochs(&cfg);
        let flagged: Vec<(u64, &str)> = epochs
            .iter()
            .flat_map(|e| e.findings.iter().map(move |f| (e.epoch, f.name.as_str())))
            .collect();
        assert_eq!(
            flagged,
            vec![(1, "bad")],
            "exactly the epoch-1 anomaly must be flagged"
        );
        assert_eq!(epochs[1].start.as_nanos(), 10_000);
    }
}
