//! The per-hop measurement plane.
//!
//! The paper's deployment model is an RLI instance *at every upgraded
//! router* (§3, Fig. 10): operators attach estimator instances to
//! individual devices and segments so latency faults can be localized to a
//! hop, not just noticed end-to-end. [`MeasurementPlane`] is that layer for
//! the simulator: any number of RLI estimator instances (sender
//! interleaving feeds them over the fabric; receiver interpolation from
//! `rlir-rli` runs inside them) attach to arbitrary taps of the engine's
//! [`HopEvent`] stream — a switch ingress, a `(node, port)` egress, or a
//! host-facing delivery point — each with dense per-flow state
//! ([`FlowTable`]) and optional simulation ground truth for evaluation.
//!
//! A tap is an [`RliReceiver`] plus the wiring that a real deployment would
//! configure out of band: which observation point it sits on
//! ([`TapPoint`]), which sender's reference stream it locks onto, which
//! regular packets it meters ([`TapSpec::meter`]), and — simulation only —
//! which ground-truth span to score against ([`TruthRef`]).
//!
//! ## Ordering
//!
//! Receivers require time-ordered input. Taps on [`TapPoint::NodeArrival`]
//! fed live, and taps fed from an already-sorted delivery stream (the
//! tandem pipeline), can set [`TapSpec::ordered`] and stream straight into
//! the receiver with no buffering. All other taps buffer observations and
//! sort them by `(observation time, delivery time, packet id)` at
//! [`MeasurementPlane::finish`] — the same total order the evaluation
//! harnesses used before this plane existed, so the rewiring is
//! output-preserving (see `tests/rewiring_pins.rs`).
//!
//! ## Delivered-only taps
//!
//! With [`TapSpec::delivered_only`] (the default) a tap scores a packet's
//! crossing only if the packet ultimately exits the network; the
//! observation is reconstructed from the [`HopKind::Deliver`] event's hop
//! record. That matches the paper's evaluation methodology (accuracy is
//! judged on packets whose end-to-end truth exists). A live tap
//! (`delivered_only = false`) sees every crossing, including packets
//! dropped downstream — what a real device-resident instance observes.

use crate::localization::{localize, AnomalyFinding, LocalizerConfig, SegmentObservation};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{Interpolator, ReceiverConfig, ReceiverReport, RliReceiver};
use rlir_sim::pipeline::Delivery;
use rlir_sim::{Hop, HopEvent, HopKind, HopSink, NodeId, PortId};

/// Where on the hop-event stream a tap sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TapPoint {
    /// Switch ingress: the instant a packet arrives at the node. This is
    /// where the paper's core-router receivers sit (references are
    /// timestamped on arrival, before local queueing).
    NodeArrival(NodeId),
    /// Port egress: the instant a packet's last bit leaves `(node, port)`.
    PortDeparture(NodeId, PortId),
    /// Host-facing delivery at the node — where the destination-ToR
    /// receiver sits.
    Delivery(NodeId),
}

impl TapPoint {
    /// The node this tap observes.
    pub fn node(&self) -> NodeId {
        match *self {
            TapPoint::NodeArrival(n) | TapPoint::PortDeparture(n, _) | TapPoint::Delivery(n) => n,
        }
    }
}

/// Which ground-truth span a tap scores its estimates against
/// (`None` in deployment — truth is a simulation-only input).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum TruthRef {
    /// No ground truth: estimates are recorded unscored.
    #[default]
    NoTruth,
    /// Injection → observation (the upstream segment from the sender).
    SinceInjection,
    /// First traversed hop from this node set → observation (e.g. "since
    /// the core": the downstream segment). Unscored if no listed node was
    /// traversed.
    SinceArrivalAt(Vec<NodeId>),
}

/// Decides whether a tap meters a given regular packet (receives the full
/// hop event, marks applied). `None` meters everything at the point.
pub type MeterFn<'a> = Box<dyn Fn(&HopEvent<'_>) -> bool + 'a>;

/// Filters/rewrites reference packets before the receiver sees them —
/// RLIR's receiver-side demultiplexing decides which reference *stream* an
/// observation point listens to (§3.1). `None` passes references through
/// unchanged (the receiver still ignores senders it is not bound to).
pub type RefMapFn<'a> = Box<dyn Fn(&ReferenceInfo) -> Option<ReferenceInfo> + 'a>;

/// Full configuration of one attached tap.
pub struct TapSpec<'a> {
    /// Printable name (segment names feed [`SegmentObservation`]).
    pub name: String,
    /// Observation point.
    pub point: TapPoint,
    /// The reference stream this tap's receiver locks onto.
    pub sender: SenderId,
    /// Ground-truth span for evaluation.
    pub truth: TruthRef,
    /// Score only packets that ultimately exit the network (see module
    /// docs). Default `true`.
    pub delivered_only: bool,
    /// The feed is already time-ordered: stream into the receiver without
    /// buffering. Only sound for live [`TapPoint::NodeArrival`] taps and
    /// externally-sorted feeds. Default `false`.
    pub ordered: bool,
    /// The receiver's local clock.
    pub clock: ClockModel,
    /// Delay estimator.
    pub interpolator: Interpolator,
    /// Receiver interpolation-buffer cap.
    pub max_buffer: usize,
    /// Track a per-flow delay quantile (P² estimator), e.g. `Some(0.9)`.
    pub track_quantile: Option<f64>,
    /// Regular-packet admission rule.
    pub meter: Option<MeterFn<'a>>,
    /// Reference filter/rewrite rule.
    pub ref_map: Option<RefMapFn<'a>>,
}

impl<'a> TapSpec<'a> {
    /// A tap with the evaluation defaults: delivered-only, buffered,
    /// perfect clock, linear interpolation, 4M-packet buffer cap, truth
    /// since injection.
    pub fn new(name: impl Into<String>, point: TapPoint, sender: SenderId) -> Self {
        TapSpec {
            name: name.into(),
            point,
            sender,
            truth: TruthRef::SinceInjection,
            delivered_only: true,
            ordered: false,
            clock: ClockModel::perfect(),
            interpolator: Interpolator::Linear,
            max_buffer: 1 << 22,
            track_quantile: None,
            meter: None,
            ref_map: None,
        }
    }
}

/// One buffered observation, keyed for the deterministic drain order.
enum Payload {
    Reference(ReferenceInfo),
    Regular {
        flow: FlowKey,
        truth: Option<SimDuration>,
    },
}

struct TapState<'a> {
    spec: TapSpec<'a>,
    rx: RliReceiver,
    /// `((at, delivery-or-seq tiebreak, packet id), payload)`.
    pending: Vec<((SimTime, u64, u64), Payload)>,
}

/// Final output of one tap.
pub struct TapReport {
    /// The tap's name.
    pub name: String,
    /// Where it sat.
    pub point: TapPoint,
    /// The reference stream it was bound to.
    pub sender: SenderId,
    /// Receiver output: dense per-flow table, counters, optional
    /// per-packet log.
    pub report: ReceiverReport,
}

impl TapReport {
    /// The tap folded into a segment-level observation, when it produced
    /// scored estimates.
    pub fn segment(&self) -> Option<SegmentObservation> {
        match (
            self.report.flows.aggregate_est_mean(),
            self.report.flows.aggregate_true_mean(),
        ) {
            (Some(est), Some(truth)) => Some(SegmentObservation {
                name: self.name.clone(),
                est_mean_ns: est,
                true_mean_ns: truth,
                packets: self.report.counters.estimated,
            }),
            _ => None,
        }
    }
}

/// Everything the plane measured, in tap-attachment order.
pub struct PlaneReport {
    /// Per-tap reports.
    pub taps: Vec<TapReport>,
}

impl PlaneReport {
    /// Segment observations of every tap that produced scored estimates,
    /// in tap order — the localizer's input.
    pub fn segments(&self) -> Vec<SegmentObservation> {
        self.taps.iter().filter_map(|t| t.segment()).collect()
    }

    /// Fabric-wide localization: rank hops whose estimated latency stands
    /// out from the fabric median (descending severity).
    pub fn localize(&self, cfg: &LocalizerConfig) -> Vec<AnomalyFinding> {
        localize(&self.segments(), cfg)
    }
}

/// Synthetic node ids for the two-switch tandem feed
/// ([`MeasurementPlane::observe_tandem`]).
pub const TANDEM_SW1: NodeId = 0;
/// Second (bottleneck) tandem switch — where tandem deliveries happen.
pub const TANDEM_SW2: NodeId = 1;

/// Attachable RLI taps over the engine's hop-event stream. Implements
/// [`HopSink`], so a plane *is* the sink argument of
/// [`rlir_sim::run_network_with`].
#[derive(Default)]
pub struct MeasurementPlane<'a> {
    taps: Vec<TapState<'a>>,
    live_seq: u64,
    /// Whether any tap is live (`!delivered_only`). Arrive/dequeue events
    /// dominate the engine's stream; when every tap is delivered-gated
    /// (the evaluation default) they short-circuit without scanning taps.
    has_live_taps: bool,
}

impl<'a> MeasurementPlane<'a> {
    /// An empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a tap; returns its index (reports come back in attachment
    /// order).
    pub fn attach(&mut self, spec: TapSpec<'a>) -> usize {
        let rx = {
            let cfg = ReceiverConfig {
                sender: spec.sender,
                clock: spec.clock,
                interpolator: spec.interpolator,
                max_buffer: spec.max_buffer,
                record_estimates: false,
            };
            match spec.track_quantile {
                Some(p) => RliReceiver::with_quantile(cfg, p),
                None => RliReceiver::new(cfg),
            }
        };
        self.has_live_taps |= !spec.delivered_only;
        self.taps.push(TapState {
            spec,
            rx,
            pending: Vec::new(),
        });
        self.taps.len() - 1
    }

    /// Number of attached taps.
    pub fn tap_count(&self) -> usize {
        self.taps.len()
    }

    /// Feed one tandem-pipeline delivery (the two-switch topology of
    /// Fig. 3) as a hop event: switch 1 is [`TANDEM_SW1`], deliveries
    /// happen at [`TANDEM_SW2`]. Deliveries arrive in delivery-time order,
    /// so a single [`TapPoint::Delivery`]`(TANDEM_SW2)` tap may set
    /// [`TapSpec::ordered`] and stream.
    pub fn observe_tandem(&mut self, d: &Delivery) {
        let hop_buf;
        let hops: &[Hop] = match d.sw1_egress {
            Some(egress) => {
                hop_buf = [Hop {
                    node: TANDEM_SW1,
                    port: 0,
                    arrived: d.sent_at,
                    departed: egress,
                }];
                &hop_buf
            }
            None => &[],
        };
        let injected_node = if d.sw1_egress.is_some() {
            TANDEM_SW1
        } else {
            TANDEM_SW2
        };
        self.on_hop(&HopEvent {
            kind: HopKind::Deliver,
            node: TANDEM_SW2,
            at: d.delivered_at,
            packet: &d.packet,
            injected_node,
            injected_at: d.sent_at,
            hops,
        });
    }

    /// Route one observation into tap `idx` at observation time `at` with
    /// tie-break key `(tie, id)`.
    fn observe(taps: &mut [TapState<'a>], idx: usize, at: SimTime, tie: u64, ev: &HopEvent<'_>) {
        let tap = &mut taps[idx];
        let payload = match ev.packet.reference_info() {
            Some(info) => {
                let mapped = match &tap.spec.ref_map {
                    Some(f) => f(info),
                    None => Some(*info),
                };
                match mapped {
                    Some(info) => Payload::Reference(info),
                    None => return,
                }
            }
            None if ev.packet.is_regular() => {
                if let Some(meter) = &tap.spec.meter {
                    if !meter(ev) {
                        return;
                    }
                }
                let truth = match &tap.spec.truth {
                    TruthRef::NoTruth => None,
                    TruthRef::SinceInjection => Some(at.saturating_since(ev.injected_at)),
                    TruthRef::SinceArrivalAt(nodes) => ev
                        .hops
                        .iter()
                        .find(|h| nodes.contains(&h.node))
                        .map(|h| at.saturating_since(h.arrived)),
                };
                Payload::Regular {
                    flow: ev.packet.flow,
                    truth,
                }
            }
            // Cross traffic is invisible to the measurement plane.
            None => return,
        };
        if tap.spec.ordered {
            feed(&mut tap.rx, at, &payload);
        } else {
            tap.pending.push(((at, tie, ev.packet.id.0), payload));
        }
    }

    /// Drain buffered taps (deterministic order) and finish every
    /// receiver.
    pub fn finish(self) -> PlaneReport {
        let taps = self
            .taps
            .into_iter()
            .map(|mut t| {
                t.pending.sort_by_key(|(key, _)| *key);
                for ((at, _, _), payload) in &t.pending {
                    feed(&mut t.rx, *at, payload);
                }
                TapReport {
                    name: t.spec.name,
                    point: t.spec.point,
                    sender: t.spec.sender,
                    report: t.rx.finish(),
                }
            })
            .collect();
        PlaneReport { taps }
    }
}

fn feed(rx: &mut RliReceiver, at: SimTime, payload: &Payload) {
    match payload {
        Payload::Reference(info) => rx.on_reference(at, info),
        Payload::Regular { flow, truth } => rx.on_regular(at, *flow, *truth),
    }
}

impl HopSink for MeasurementPlane<'_> {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        match ev.kind {
            HopKind::Arrive => {
                if !self.has_live_taps {
                    return; // every tap is delivered-gated: nothing to do
                }
                self.live_seq += 1;
                let tie = self.live_seq;
                for i in 0..self.taps.len() {
                    let spec = &self.taps[i].spec;
                    if !spec.delivered_only && spec.point == TapPoint::NodeArrival(ev.node) {
                        Self::observe(&mut self.taps, i, ev.at, tie, ev);
                    }
                }
            }
            HopKind::Dequeue { port, .. } => {
                if !self.has_live_taps {
                    return;
                }
                self.live_seq += 1;
                let tie = self.live_seq;
                for i in 0..self.taps.len() {
                    let spec = &self.taps[i].spec;
                    if !spec.delivered_only && spec.point == TapPoint::PortDeparture(ev.node, port)
                    {
                        Self::observe(&mut self.taps, i, ev.at, tie, ev);
                    }
                }
            }
            HopKind::Deliver => {
                let delivered = ev.at.as_nanos();
                for i in 0..self.taps.len() {
                    let spec = &self.taps[i].spec;
                    let at = match spec.point {
                        TapPoint::Delivery(n) if n == ev.node => Some(ev.at),
                        TapPoint::NodeArrival(n) if spec.delivered_only => {
                            ev.hops.iter().find(|h| h.node == n).map(|h| h.arrived)
                        }
                        TapPoint::PortDeparture(n, p) if spec.delivered_only => ev
                            .hops
                            .iter()
                            .find(|h| h.node == n && h.port == p)
                            .map(|h| h.departed),
                        _ => None,
                    };
                    if let Some(at) = at {
                        Self::observe(&mut self.taps, i, at, delivered, ev);
                    }
                }
            }
            // Enqueue/drop events carry no measurement semantics (yet):
            // RLI meters what crosses a point, not what dies at it.
            HopKind::Enqueue { .. } | HopKind::QueueDrop { .. } | HopKind::RouteDrop => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlir_net::packet::Packet;
    use std::net::Ipv4Addr;

    fn fk(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            1,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        )
    }

    fn deliver_ev<'e>(
        packet: &'e Packet,
        hops: &'e [Hop],
        node: NodeId,
        at_ns: u64,
    ) -> HopEvent<'e> {
        HopEvent {
            kind: HopKind::Deliver,
            node,
            at: SimTime::from_nanos(at_ns),
            packet,
            injected_node: 0,
            injected_at: packet.created_at,
            hops,
        }
    }

    #[test]
    fn delivery_tap_estimates_and_scores_against_injection_truth() {
        let mut plane = MeasurementPlane::new();
        plane.attach(TapSpec::new("end", TapPoint::Delivery(2), SenderId(1)));
        let hops = [];
        let r0 = Packet::reference(10, fk(9), SenderId(1), 0, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&r0, &hops, 2, 100)); // delay 100
        let p = Packet::regular(11, fk(1), 700, SimTime::from_nanos(40));
        plane.on_hop(&deliver_ev(&p, &hops, 2, 150)); // truth 110
        let r1 = Packet::reference(12, fk(9), SenderId(1), 1, SimTime::from_nanos(60));
        plane.on_hop(&deliver_ev(&r1, &hops, 2, 200)); // delay 140
        let rep = plane.finish();
        assert_eq!(rep.taps.len(), 1);
        let flows = &rep.taps[0].report.flows;
        let acc = flows.get(&fk(1)).expect("metered");
        // left 100@100, right 140@200 → estimate at 150 = 120; truth 110.
        assert_eq!(acc.est.mean(), Some(120.0));
        assert_eq!(acc.truth.mean(), Some(110.0));
        let seg = rep.taps[0].segment().expect("scored");
        assert_eq!(seg.packets, 1);
    }

    #[test]
    fn delivered_only_node_tap_reconstructs_hop_crossings() {
        let mut plane = MeasurementPlane::new();
        let mut spec = TapSpec::new("mid", TapPoint::NodeArrival(1), SenderId(1));
        spec.truth = TruthRef::SinceInjection;
        plane.attach(spec);
        // Packet injected at t=0, arrives node 1 at t=500, delivered 900.
        let hops = [
            Hop {
                node: 0,
                port: 0,
                arrived: SimTime::ZERO,
                departed: SimTime::from_nanos(400),
            },
            Hop {
                node: 1,
                port: 0,
                arrived: SimTime::from_nanos(500),
                departed: SimTime::from_nanos(800),
            },
        ];
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let rhops = [Hop {
            node: 1,
            port: 0,
            arrived: SimTime::from_nanos(100),
            departed: SimTime::from_nanos(150),
        }];
        plane.on_hop(&deliver_ev(&r0, &rhops, 2, 400)); // seen at node1 @100, delay 100
        let p = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&p, &hops, 2, 900)); // seen at node1 @500, truth 500
        let r1 = Packet::reference(3, fk(9), SenderId(1), 1, SimTime::from_nanos(500));
        let rhops1 = [Hop {
            node: 1,
            port: 0,
            arrived: SimTime::from_nanos(700),
            departed: SimTime::from_nanos(750),
        }];
        plane.on_hop(&deliver_ev(&r1, &rhops1, 2, 1000)); // seen @700, delay 200
        let rep = plane.finish();
        let acc = rep.taps[0].report.flows.get(&fk(1)).expect("metered");
        // left 100@100, right 200@700 → at 500: 100 + 100·(400/600) ≈ 166.67
        let est = acc.est.mean().unwrap();
        assert!((est - 166.666).abs() < 0.01, "est {est}");
        assert_eq!(acc.truth.mean(), Some(500.0));
    }

    #[test]
    fn meter_and_ref_map_gate_the_tap() {
        let mut plane = MeasurementPlane::new();
        let mut spec = TapSpec::new("gated", TapPoint::Delivery(2), SenderId(7));
        // Only meter flow fk(1); rewrite every reference to sender 7.
        spec.meter = Some(Box::new(|ev| ev.packet.flow == fk(1)));
        spec.ref_map = Some(Box::new(|info| {
            Some(ReferenceInfo {
                sender: SenderId(7),
                ..*info
            })
        }));
        plane.attach(spec);
        let hops = [];
        let r0 = Packet::reference(1, fk(9), SenderId(3), 0, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&r0, &hops, 2, 100));
        let keep = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        let drop = Packet::regular(3, fk(2), 700, SimTime::ZERO);
        plane.on_hop(&deliver_ev(&keep, &hops, 2, 150));
        plane.on_hop(&deliver_ev(&drop, &hops, 2, 160));
        let r1 = Packet::reference(4, fk(9), SenderId(3), 1, SimTime::from_nanos(100));
        plane.on_hop(&deliver_ev(&r1, &hops, 2, 200));
        let rep = plane.finish();
        let report = &rep.taps[0].report;
        assert_eq!(report.counters.refs_accepted, 2, "rewritten refs accepted");
        assert_eq!(report.counters.estimated, 1, "only fk(1) metered");
        assert!(report.flows.get(&fk(2)).is_none());
    }

    #[test]
    fn buffered_taps_sort_by_time_then_delivery_order() {
        // Observations arrive out of delivery order (as Deliver events do);
        // the drain must reorder by (at, delivered, id).
        let mut plane = MeasurementPlane::new();
        let mut spec = TapSpec::new("mid", TapPoint::NodeArrival(1), SenderId(1));
        spec.truth = TruthRef::NoTruth;
        plane.attach(spec);
        let hop_at = |ns: u64| {
            [Hop {
                node: 1,
                port: 0,
                arrived: SimTime::from_nanos(ns),
                departed: SimTime::from_nanos(ns + 10),
            }]
        };
        // Regular seen at node1 @150 but delivered late (at 900).
        let p = Packet::regular(5, fk(1), 700, SimTime::ZERO);
        let h = hop_at(150);
        let late = deliver_ev(&p, &h, 2, 900);
        // References bracket it, delivered earlier.
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let h0 = hop_at(100);
        let r1 = Packet::reference(2, fk(9), SenderId(1), 1, SimTime::from_nanos(60));
        let h1 = hop_at(200);
        // Feed in "wrong" order: closing ref first.
        plane.on_hop(&deliver_ev(&r1, &h1, 2, 300));
        plane.on_hop(&late);
        plane.on_hop(&deliver_ev(&r0, &h0, 2, 250));
        let rep = plane.finish();
        let report = &rep.taps[0].report;
        assert_eq!(report.counters.estimated, 1, "packet bracketed after sort");
        // left delay 100@100, right delay 140@200 → at 150: 120.
        let acc = report.flows.get(&fk(1)).expect("metered");
        assert_eq!(acc.est.mean(), Some(120.0));
    }

    #[test]
    fn two_live_taps_see_different_hops_of_one_event_stream() {
        let mut plane = MeasurementPlane::new();
        for node in [0usize, 1] {
            let mut spec =
                TapSpec::new(format!("n{node}"), TapPoint::NodeArrival(node), SenderId(1));
            spec.delivered_only = false;
            spec.ordered = true;
            spec.truth = TruthRef::SinceInjection;
            plane.attach(spec);
        }
        fn arrive(packet: &Packet, node: NodeId, at_ns: u64) -> HopEvent<'_> {
            HopEvent {
                kind: HopKind::Arrive,
                node,
                at: SimTime::from_nanos(at_ns),
                packet,
                injected_node: 0,
                injected_at: packet.created_at,
                hops: &[],
            }
        }
        let r0 = Packet::reference(1, fk(9), SenderId(1), 0, SimTime::ZERO);
        let p = Packet::regular(2, fk(1), 700, SimTime::ZERO);
        let r1 = Packet::reference(3, fk(9), SenderId(1), 1, SimTime::from_nanos(100));
        // Node 0 sees everything early, node 1 sees it all 500 ns later.
        for (node, shift) in [(0usize, 0u64), (1, 500)] {
            plane.on_hop(&arrive(&r0, node, 10 + shift));
            plane.on_hop(&arrive(&p, node, 20 + shift));
            plane.on_hop(&arrive(&r1, node, 110 + shift));
        }
        let rep = plane.finish();
        assert_eq!(rep.taps.len(), 2);
        let m0 = rep.taps[0].report.flows.get(&fk(1)).unwrap().est.mean();
        let m1 = rep.taps[1].report.flows.get(&fk(1)).unwrap().est.mean();
        assert!(m1.unwrap() > m0.unwrap() + 400.0, "{m0:?} vs {m1:?}");
    }
}
