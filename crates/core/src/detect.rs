//! Closed-loop online anomaly detection over the measurement plane.
//!
//! The localization sweep answers "where" *after* the run; an operator
//! running RLI continuously needs "since when" *during* it — a detector
//! that watches the per-epoch export as epochs settle and raises an alarm
//! with bounded delay. [`EpochDetector`] is that consumer: it subscribes to
//! the plane's streaming epoch series (readable mid-run via
//! [`MeasurementPlane::epoch_series`]), scores every **settled** epoch —
//! one whose observations have all cleared the reorder window, so its
//! snapshot is final — and runs a per-segment CUSUM over EWMA-smoothed
//! est/median ratios. The median across concurrently-estimating segments
//! is the same robust baseline the whole-run
//! [`localize`](crate::localization::localize) uses, so a healthy fabric
//! contributes ratios near 1 regardless of load, and the CUSUM drift
//! absorbs the residual noise at a configurable false-positive budget.
//!
//! [`ClosedLoopSink`] closes the loop: it wraps the plane as the engine's
//! [`HopSink`], polls the detector on every watermark advance, and raises a
//! [`StopFlag`] on the first [`Detection`] — the engine halts mid-run, so
//! **time-to-localize** (detection watermark − fault onset) is an honest
//! online metric, not a post-hoc replay.

use crate::plane::{DrainMode, MeasurementPlane};
use rlir_net::time::SimTime;
use rlir_sim::{FaultEvent, HopEvent, HopSink, StopFlag};
use serde::{Deserialize, Serialize};

/// Configuration of the online epoch detector.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// CUSUM firing threshold: cumulative drift-adjusted excess ratio a
    /// segment must accumulate before an alarm. Higher = fewer false
    /// positives, longer detection delay.
    pub threshold: f64,
    /// Per-epoch slack subtracted before accumulating: a segment only
    /// charges its CUSUM while its smoothed ratio exceeds `1 + drift`.
    pub drift: f64,
    /// EWMA weight on the newest epoch's ratio (1.0 = no smoothing).
    pub alpha: f64,
    /// A segment's epoch is eligible only with at least this many
    /// estimated packets (mirrors
    /// [`LocalizerConfig::min_packets`](crate::localization::LocalizerConfig)).
    pub min_packets: u64,
    /// An epoch is scored only when at least this many segments are
    /// eligible (the median needs a baseline).
    pub min_segments: usize,
    /// Scored epochs to observe before any verdict may fire — lets the
    /// EWMA state converge on the fabric's healthy baseline.
    pub warmup_epochs: u64,
}

impl Default for DetectorConfig {
    /// Tuned for the evaluation fabric: a 400 µs degradation at µs-scale
    /// baselines produces ratios ≫ 2, firing one to two epochs after
    /// onset, while healthy-load ratio noise (≲ 1.5) never accumulates.
    fn default() -> Self {
        DetectorConfig {
            threshold: 4.0,
            drift: 0.75,
            alpha: 0.5,
            min_packets: 5,
            min_segments: 3,
            warmup_epochs: 2,
        }
    }
}

/// An online alarm: the first segment whose CUSUM crossed the threshold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Detection {
    /// Index of the flagged tap (plane attachment order).
    pub tap: usize,
    /// Name of the flagged segment.
    pub name: String,
    /// The settled epoch whose evidence crossed the threshold.
    pub epoch: u64,
    /// Engine watermark at which the alarm fired — the **online detection
    /// time**; time-to-localize is `at − fault onset`.
    pub at: SimTime,
    /// The firing CUSUM score.
    pub score: f64,
}

/// Per-segment change-detection state.
#[derive(Debug, Clone, Copy, Default)]
struct SegState {
    /// EWMA-smoothed est/median ratio (`None` before the first eligible
    /// epoch).
    ewma: Option<f64>,
    /// One-sided CUSUM of the drift-adjusted smoothed ratio.
    cusum: f64,
}

/// Rolling change detector over the plane's settled epochs (see module
/// docs). Feed it watermarks via [`EpochDetector::poll`]; it consumes each
/// settled epoch exactly once and returns the first [`Detection`].
#[derive(Debug, Clone)]
pub struct EpochDetector {
    cfg: DetectorConfig,
    /// Next epoch index to score once settled.
    next_epoch: u64,
    /// Epochs actually scored (eligible-segment quorum met).
    scored: u64,
    /// Per-tap state, lazily sized to the plane's tap count.
    state: Vec<SegState>,
}

impl EpochDetector {
    /// A fresh detector.
    pub fn new(cfg: DetectorConfig) -> Self {
        EpochDetector {
            cfg,
            next_epoch: 0,
            scored: 0,
            state: Vec::new(),
        }
    }

    /// Score every newly-settled epoch against `watermark` and return the
    /// first alarm, if any. Requires the plane to run with epochs and the
    /// streaming drain (otherwise there is nothing to consume online and
    /// the poll is a no-op).
    ///
    /// An epoch is *settled* once the watermark has advanced two reorder
    /// windows past its end: every observation inside it has cleared the
    /// plane's flush bound (one window) including the half-window flush
    /// granularity, so its snapshots are final.
    pub fn poll(&mut self, plane: &MeasurementPlane<'_>, watermark: SimTime) -> Option<Detection> {
        let cfg = plane.config();
        let epoch_ns = cfg.epoch_ns()?;
        let DrainMode::Streaming { reorder_window } = cfg.drain else {
            return None;
        };
        let settled = watermark
            .as_nanos()
            .saturating_sub(2 * reorder_window.as_nanos());
        if self.state.len() < plane.tap_count() {
            self.state.resize(plane.tap_count(), SegState::default());
        }
        while (self.next_epoch + 1).saturating_mul(epoch_ns) <= settled {
            let epoch = self.next_epoch;
            self.next_epoch += 1;
            if let Some(d) = self.score_epoch(plane, epoch, watermark) {
                return Some(d);
            }
        }
        None
    }

    fn score_epoch(
        &mut self,
        plane: &MeasurementPlane<'_>,
        epoch: u64,
        watermark: SimTime,
    ) -> Option<Detection> {
        let mut eligible: Vec<(usize, f64)> = Vec::new();
        for idx in 0..plane.tap_count() {
            let snap = plane
                .epoch_series(idx)
                .find(|s| s.epoch == epoch)
                .filter(|s| s.estimated >= self.cfg.min_packets);
            if let Some(mean) = snap.and_then(|s| s.est_mean()) {
                eligible.push((idx, mean));
            }
        }
        if eligible.len() < self.cfg.min_segments.max(2) {
            return None;
        }
        let mut means: Vec<f64> = eligible.iter().map(|&(_, m)| m).collect();
        means.sort_by(|a, b| a.partial_cmp(b).expect("epoch means are finite"));
        let median = means[means.len() / 2];
        if median <= 0.0 {
            return None;
        }
        self.scored += 1;
        let judge = self.scored > self.cfg.warmup_epochs;
        let mut best: Option<(usize, f64)> = None;
        for (idx, mean) in eligible {
            let st = &mut self.state[idx];
            let ratio = mean / median;
            let ewma = match st.ewma {
                Some(prev) => self.cfg.alpha * ratio + (1.0 - self.cfg.alpha) * prev,
                None => ratio,
            };
            st.ewma = Some(ewma);
            st.cusum = (st.cusum + ewma - 1.0 - self.cfg.drift).max(0.0);
            if judge && st.cusum >= self.cfg.threshold && best.is_none_or(|(_, s)| st.cusum > s) {
                best = Some((idx, st.cusum));
            }
        }
        best.map(|(tap, score)| Detection {
            tap,
            name: plane.tap_name(tap).to_string(),
            epoch,
            at: watermark,
            score,
        })
    }
}

/// The closed loop: plane + detector + engine termination, as one
/// [`HopSink`].
///
/// Forwards every hop event and watermark into the wrapped plane, then
/// polls the detector on watermark advances. On the first [`Detection`] it
/// raises the [`StopFlag`] handed to the engine via
/// [`RunOptions::stop`](rlir_sim::RunOptions), so the run halts — and the
/// detection watermark is a true online detection time.
pub struct ClosedLoopSink<'p, 'a> {
    plane: &'p mut MeasurementPlane<'a>,
    detector: EpochDetector,
    stop: StopFlag,
    detection: Option<Detection>,
}

impl<'p, 'a> ClosedLoopSink<'p, 'a> {
    /// Wrap `plane`; `stop` must be the same flag passed to the engine.
    pub fn new(plane: &'p mut MeasurementPlane<'a>, cfg: DetectorConfig, stop: StopFlag) -> Self {
        ClosedLoopSink {
            plane,
            detector: EpochDetector::new(cfg),
            stop,
            detection: None,
        }
    }

    /// The alarm, once one fired.
    pub fn detection(&self) -> Option<&Detection> {
        self.detection.as_ref()
    }

    /// Consume the sink, yielding the alarm (if any).
    pub fn into_detection(self) -> Option<Detection> {
        self.detection
    }
}

impl HopSink for ClosedLoopSink<'_, '_> {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.plane.on_hop(ev);
    }

    fn on_fault(&mut self, ev: &FaultEvent) {
        self.plane.on_fault(ev);
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        self.plane.on_watermark(watermark);
        if self.detection.is_none() {
            if let Some(d) = self.detector.poll(self.plane, watermark) {
                self.stop.request_stop();
                self.detection = Some(d);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{PlaneConfig, TapPoint, TapSpec, TruthRef};
    use rlir_net::packet::{Packet, SenderId};
    use rlir_net::time::SimDuration;
    use rlir_net::FlowKey;
    use rlir_sim::{Hop, HopKind};
    use std::net::Ipv4Addr;

    fn fk(i: u8) -> FlowKey {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, i),
            1,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        )
    }

    /// Three delivery taps fed synthetic reference brackets; the "bad"
    /// segment's reference delays jump at `onset_ns`.
    fn drive(onset_ns: u64, total_ns: u64) -> (Option<Detection>, bool) {
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::Streaming {
                reorder_window: SimDuration::from_nanos(2_000),
            },
            epoch: Some(SimDuration::from_nanos(10_000)),
            ..PlaneConfig::default()
        });
        for (name, node) in [("good-a", 2usize), ("good-b", 3), ("bad", 4)] {
            let mut spec = TapSpec::new(name, TapPoint::Delivery(node), SenderId(1));
            spec.truth = TruthRef::NoTruth;
            plane.attach(spec);
        }
        let stop = StopFlag::new();
        let mut sink = ClosedLoopSink::new(
            &mut plane,
            DetectorConfig {
                min_packets: 1,
                min_segments: 3,
                warmup_epochs: 1,
                ..DetectorConfig::default()
            },
            stop.clone(),
        );
        let hops: [Hop; 0] = [];
        let mut id = 0u64;
        let mut t = 0u64;
        while t < total_ns {
            if stop.is_set() {
                break;
            }
            sink.on_watermark(SimTime::from_nanos(t));
            for node in [2usize, 3, 4] {
                // Reference delay: 1 µs baseline; the bad segment jumps to
                // 10 µs from the onset. tx_timestamp = at − delay.
                let delay = if node == 4 && t >= onset_ns {
                    10_000
                } else {
                    1_000
                };
                id += 1;
                let r = Packet::reference(
                    id,
                    fk(9),
                    SenderId(1),
                    id as u32,
                    SimTime::from_nanos(t.saturating_sub(delay)),
                );
                sink.on_hop(&HopEvent {
                    kind: HopKind::Deliver,
                    node,
                    at: SimTime::from_nanos(t),
                    packet: &r,
                    injected_node: 0,
                    injected_at: r.created_at,
                    hops: &hops,
                });
                id += 1;
                let p = Packet::regular(id, fk(node as u8), 700, SimTime::from_nanos(t));
                sink.on_hop(&HopEvent {
                    kind: HopKind::Deliver,
                    node,
                    at: SimTime::from_nanos(t + 1),
                    packet: &p,
                    injected_node: 0,
                    injected_at: p.created_at,
                    hops: &hops,
                });
            }
            t += 1_000;
        }
        (sink.into_detection(), stop.is_set())
    }

    #[test]
    fn detects_the_degraded_segment_and_raises_the_stop_flag() {
        let (det, stopped) = drive(40_000, 400_000);
        let det = det.expect("10× latency jump must be detected");
        assert!(stopped, "detection must raise the stop flag");
        assert_eq!(det.name, "bad");
        // Online: the alarm watermark trails the onset by epochs + the
        // settling lag, but must come well before the feed's end.
        assert!(det.at.as_nanos() > 40_000);
        assert!(det.at.as_nanos() < 200_000, "at {}", det.at.as_nanos());
        assert!(det.score >= 4.0);
        assert!(det.epoch >= 4, "epoch {} before the onset", det.epoch);
    }

    #[test]
    fn healthy_feed_never_fires() {
        // Onset beyond the horizon: all segments stay at the baseline.
        let (det, stopped) = drive(u64::MAX, 400_000);
        assert!(det.is_none(), "false positive: {det:?}");
        assert!(!stopped);
    }

    #[test]
    fn poll_is_a_noop_without_epochs() {
        let mut plane = MeasurementPlane::new(); // no epochs configured
        plane.attach(TapSpec::new("t", TapPoint::Delivery(0), SenderId(1)));
        let mut det = EpochDetector::new(DetectorConfig::default());
        assert!(det
            .poll(&plane, SimTime::from_nanos(1_000_000_000))
            .is_none());
    }
}
