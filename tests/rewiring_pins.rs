//! Output pins captured **before** each engine/plane rewiring.
//!
//! PR 3: the fat-tree, asymmetric and incast harnesses were rewired from
//! bespoke per-segment event queues onto the shared `MeasurementPlane` +
//! `HopSink` architecture; these digests assert the rewiring is
//! output-preserving bit for bit (f64s compared via `to_bits` inside the
//! digest). Captured at commit 4cd9b46 with `examples/pin_digest.rs`-style
//! folding.
//!
//! PR 5: the scenarios were rewired onto the arena-backed slab engine —
//! `fattree` (and transitively `incast`/`localize`) plus `drop_aware` onto
//! streamed deliveries, `asymmetric` unchanged on the tandem — and the
//! PR 3 digests above double as the slab-engine pins. The `localize` and
//! `drop_aware` digests below were captured at commit 7b636b0 (the PR 4
//! buffered engine) immediately before the swap.

use rlir::experiment::{
    run_asymmetric, run_drop_aware, run_fattree, run_incast, run_localize_full, AsymmetricConfig,
    DropAwareConfig, FatTreeExpConfig, IncastConfig, LocalizeConfig,
};
use rlir::CoreDemux;
use rlir_exec::SweepRunner;
use rlir_net::time::SimDuration;
use rlir_rli::{EpochSnapshot, PolicyKind};

fn fold(h: u64, bits: u64) -> u64 {
    h.rotate_left(7) ^ bits.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn digest_f64s(h: u64, vals: &[f64]) -> u64 {
    vals.iter().fold(h, |h, v| fold(h, v.to_bits()))
}

fn fattree_digest(demux: CoreDemux) -> u64 {
    let mut cfg = FatTreeExpConfig::paper(11, SimDuration::from_millis(20));
    cfg.policy = PolicyKind::Static { n: 30 };
    cfg.demux = demux;
    let out = run_fattree(&cfg);
    let mut h = 0u64;
    h = fold(h, out.demux_total);
    h = fold(h, out.demux_correct);
    h = fold(h, out.demux_unassociated);
    h = fold(h, out.measured_delivered);
    h = fold(h, out.refs_emitted.0);
    h = fold(h, out.refs_emitted.1);
    h = fold(h, out.seg1_errors.len() as u64);
    h = digest_f64s(h, &out.seg1_errors);
    h = fold(h, out.seg2_errors.len() as u64);
    h = digest_f64s(h, &out.seg2_errors);
    h = fold(h, out.seg1_flows.flow_count() as u64);
    h = fold(h, out.seg1_flows.estimate_count());
    h = fold(h, out.seg2_flows.flow_count() as u64);
    h = fold(h, out.seg2_flows.estimate_count());
    h = fold(h, out.segments.len() as u64);
    for s in &out.segments {
        h = s.name.bytes().fold(h, |h, b| fold(h, b as u64));
        h = fold(h, s.est_mean_ns.to_bits());
        h = fold(h, s.true_mean_ns.to_bits());
        h = fold(h, s.packets);
    }
    h
}

#[test]
fn fattree_outputs_match_pre_rewiring_pins() {
    assert_eq!(
        fattree_digest(CoreDemux::ReverseEcmp),
        0xd787dd9172def65c,
        "reverse-ECMP fat-tree output drifted from the pre-rewiring pin"
    );
    // Marking demuxes perfectly too, so it feeds the receivers identically.
    assert_eq!(fattree_digest(CoreDemux::Marking), 0xd787dd9172def65c);
    assert_eq!(
        fattree_digest(CoreDemux::Naive),
        0x913711e18efc6cb3,
        "naive-demux fat-tree output drifted from the pre-rewiring pin"
    );
}

#[test]
fn asymmetric_outputs_match_pre_rewiring_pin() {
    let mut cfg = AsymmetricConfig::paper(11, SimDuration::from_millis(30));
    cfg.policy = PolicyKind::Static { n: 50 };
    cfg.reverse_utilizations = vec![0.50, 0.93];
    let pts = run_asymmetric(&cfg, &SweepRunner::single());
    let mut h = 0u64;
    for p in &pts {
        h = digest_f64s(
            h,
            &[
                p.target_reverse_utilization,
                p.forward_utilization,
                p.reverse_utilization,
                p.forward_median_error,
                p.reverse_median_error,
                p.rtt_median_error,
                p.attribution_accuracy,
            ],
        );
        h = fold(h, p.paired_flows as u64);
    }
    assert_eq!(h, 0xa8f1446e86042460, "asymmetric output drifted");
}

fn digest_epochs(h: u64, epochs: &[EpochSnapshot]) -> u64 {
    epochs.iter().fold(h, |h, e| {
        let h = fold(h, e.epoch);
        let h = fold(h, e.estimated);
        let h = fold(h, e.unestimated);
        let h = fold(h, e.dropped_after_metering);
        digest_f64s(h, &[e.est_mean().unwrap_or(f64::NAN)])
    })
}

#[test]
fn drop_aware_outputs_match_pre_slab_engine_pin() {
    let mut cfg = DropAwareConfig::paper(31, SimDuration::from_millis(40));
    cfg.policy = PolicyKind::Static { n: 50 };
    cfg.offered_loads = vec![0.5, 1.1];
    let pts = run_drop_aware(&cfg, &SweepRunner::single());
    let mut h = 0u64;
    for p in &pts {
        h = fold(h, p.offered);
        h = fold(h, p.live_metered);
        h = fold(h, p.dropped_after_metering);
        h = fold(h, p.peak_pending as u64);
        h = digest_f64s(
            h,
            &[
                p.downstream_loss,
                p.upstream_loss,
                p.live_est_mean_ns,
                p.live_true_mean_ns,
                p.delivered_est_mean_ns,
                p.delivered_true_mean_ns,
                p.survivor_bias,
                p.live_rel_err,
            ],
        );
        h = digest_epochs(h, &p.epochs);
    }
    assert_eq!(
        h, 0x33c74fa91f53967e,
        "drop_aware output drifted across the slab-engine/streamed-delivery rewiring"
    );
}

#[test]
fn localize_outputs_match_pre_slab_engine_pin() {
    let mut cfg = LocalizeConfig::paper(23, SimDuration::from_millis(20));
    cfg.base.policy = PolicyKind::Static { n: 30 };
    cfg.utilizations = vec![0.05, 0.30];
    cfg.trials = 2;
    let rep = run_localize_full(&cfg, &SweepRunner::single());
    let mut h = 0u64;
    for p in &rep.points {
        h = fold(h, p.trials as u64);
        h = fold(h, p.correct as u64);
        h = fold(h, p.flagged as u64);
        h = fold(h, p.onsets as u64);
        h = digest_f64s(
            h,
            &[p.utilization, p.accuracy, p.mean_severity, p.mean_onset_ns],
        );
    }
    for t in &rep.trials {
        h = t.victim.bytes().fold(h, |h, b| fold(h, b as u64));
        h = t
            .flagged
            .as_deref()
            .unwrap_or("-")
            .bytes()
            .fold(h, |h, b| fold(h, b as u64));
        h = fold(h, t.correct as u64);
        h = fold(h, t.segments as u64);
        h = fold(h, t.onset_ns.map(|o| o + 1).unwrap_or(0));
        h = digest_f64s(h, &[t.severity]);
        h = digest_epochs(h, &t.victim_epochs);
    }
    assert_eq!(
        h, 0x590db8fa9b2c21a4,
        "localize output drifted across the slab-engine rewiring"
    );
}

#[test]
fn incast_outputs_match_pre_rewiring_pin() {
    let mut cfg = IncastConfig::paper(17, SimDuration::from_millis(20));
    cfg.base.policy = PolicyKind::Static { n: 30 };
    cfg.fan_in = vec![1, 4];
    let pts = run_incast(&cfg, &SweepRunner::single());
    let mut h = 0u64;
    for p in &pts {
        h = fold(h, p.fan_in as u64);
        h = digest_f64s(
            h,
            &[
                p.seg1_median_error,
                p.seg2_median_error,
                p.seg2_true_delay_us,
                p.demux_accuracy,
            ],
        );
        h = fold(h, p.measured_delivered);
        h = fold(h, p.refs_emitted);
    }
    assert_eq!(h, 0x93cab3421c902f82, "incast output drifted");
}
