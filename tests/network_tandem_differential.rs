//! Differential test: the event-driven `Network` engine on a degenerate
//! 2-switch topology reproduces the streaming tandem
//! ([`rlir_sim::run_tandem_with`]) **byte-identically** — same deliveries,
//! same queue counters — which pins the new `HopSink`/calendar-queue engine
//! path against the long-standing tandem oracle.
//!
//! Mapping: node 0 = switch 1 (one port to node 1 with the tandem's link
//! delay), node 1 = switch 2 (host-facing port with zero link delay, so the
//! delivery instant equals switch 2's departure). Upstream packets inject
//! at node 0, cross traffic injects at node 1 directly — exactly the
//! tandem's wiring.
//!
//! Tie-breaking caveat (checked here with deliberate collisions): at equal
//! switch-2 arrival instants the engine serves the earlier-scheduled event
//! (cross injections precede in-flight upstream arrivals), while the tandem
//! merge compares packet ids — the two agree whenever cross ids sort below
//! upstream ids, which is how this suite (and any caller that wants
//! engine-equivalence) numbers them.

use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::{FlowKey, SenderId};
use rlir_sim::{
    run_network_sched, run_tandem_two_pass, run_tandem_with, Delivery, Forwarder, HopEvent,
    HopKind, Network, NodeId, NullSink, Port, QueueConfig, RouteDecision, SchedulerKind,
    TandemConfig,
};
use std::net::Ipv4Addr;

struct Chain;
impl Forwarder for Chain {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

fn tandem_cfg(sw2_capacity: u64) -> TandemConfig {
    TandemConfig {
        switch1: QueueConfig {
            rate_bps: 8_000_000_000,
            capacity_bytes: 20_000,
            processing_delay: SimDuration::from_nanos(250),
        },
        switch2: QueueConfig {
            rate_bps: 8_000_000_000,
            capacity_bytes: sw2_capacity,
            processing_delay: SimDuration::ZERO,
        },
        link_delay: SimDuration::from_nanos(100),
        horizon: SimDuration::from_millis(1),
        record_cross: true,
    }
}

/// The tandem as a 2-node network.
fn tandem_network(cfg: &TandemConfig) -> Network {
    let mut net = Network::default();
    let sw1 = net.add_node("sw1");
    let sw2 = net.add_node("sw2");
    net.add_port(sw1, Port::to_switch(cfg.switch1, sw2, cfg.link_delay));
    net.add_port(sw2, Port::to_host(cfg.switch2, SimDuration::ZERO));
    net
}

/// Deterministic pseudo-random mix. Cross ids sort below upstream ids so
/// both implementations break switch-2 arrival ties identically (see
/// module docs); timestamps are multiples of 50 ns so ties actually occur.
fn mix(seed: u64, n: usize) -> (Vec<Packet>, Vec<Packet>) {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let flow = |i: u64| {
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, (i % 7) as u8),
            1000,
            Ipv4Addr::new(10, 9, 0, 1),
            80,
        )
    };
    let mut upstream: Vec<Packet> = (0..n as u64)
        .map(|i| {
            let at = SimTime::from_nanos((rng() % 40_000) / 50 * 50);
            let size = 200 + (rng() % 1200) as u32;
            if i % 17 == 0 {
                Packet::reference(100_000 + i, flow(i), SenderId(1), i as u32, at)
            } else {
                Packet::regular(100_000 + i, flow(i), size, at)
            }
        })
        .collect();
    upstream.sort_by_key(|p| (p.created_at, p.id));
    let mut cross: Vec<Packet> = (0..n as u64)
        .map(|i| {
            let at = SimTime::from_nanos((rng() % 40_000) / 50 * 50);
            let size = 300 + (rng() % 900) as u32;
            Packet::cross(i, flow(i + 3), size, at)
        })
        .collect();
    cross.sort_by_key(|p| (p.created_at, p.id));
    (upstream, cross)
}

/// Run the network form and convert to tandem [`Delivery`] records.
fn network_deliveries(
    cfg: &TandemConfig,
    upstream: &[Packet],
    cross: &[Packet],
    scheduler: SchedulerKind,
) -> (Vec<Delivery>, [u64; 4]) {
    let injections: Vec<(NodeId, Packet)> = upstream
        .iter()
        .map(|p| (0usize, *p))
        .chain(cross.iter().map(|p| (1usize, *p)))
        .collect();
    let run = run_network_sched(
        tandem_network(cfg),
        &Chain,
        injections,
        &mut NullSink,
        scheduler,
    );
    let deliveries = run
        .deliveries
        .iter()
        .map(|d| Delivery {
            packet: d.packet,
            sent_at: d.injected_at,
            sw1_egress: d.hops.iter().find(|h| h.node == 0).map(|h| h.departed),
            delivered_at: d.delivered_at,
        })
        .collect();
    let counters = [
        run.network.nodes[0].ports[0].queue.total_arrivals(),
        run.queue_drops[0],
        run.network.nodes[1].ports[0].queue.total_arrivals(),
        run.queue_drops[1],
    ];
    (deliveries, counters)
}

fn assert_equivalent(cfg: &TandemConfig, upstream: Vec<Packet>, cross: Vec<Packet>) {
    // Oracle 1: the seed's two-pass tandem. Oracle 2: the streaming tandem.
    let two_pass = run_tandem_two_pass(cfg, upstream.iter().copied(), cross.iter().copied());
    let mut streaming = Vec::new();
    let stats = run_tandem_with(cfg, upstream.iter().copied(), cross.iter().copied(), |d| {
        streaming.push(*d)
    });
    assert_eq!(streaming, two_pass.deliveries, "tandem self-check");

    for scheduler in [SchedulerKind::Calendar, SchedulerKind::Heap] {
        let (net, counters) = network_deliveries(cfg, &upstream, &cross, scheduler);
        assert_eq!(
            net, streaming,
            "network deliveries diverge from the tandem oracle ({scheduler:?})"
        );
        assert_eq!(counters[0], stats.sw1.total_arrivals(), "sw1 arrivals");
        assert_eq!(counters[1], stats.sw1.total_drops(), "sw1 drops");
        assert_eq!(counters[2], stats.sw2.total_arrivals(), "sw2 arrivals");
        assert_eq!(counters[3], stats.sw2.total_drops(), "sw2 drops");
    }
}

#[test]
fn network_reproduces_tandem_on_contended_random_mixes() {
    for seed in [3u64, 77, 2024, 0xDEAD] {
        let (upstream, cross) = mix(seed, 600);
        assert_equivalent(&tandem_cfg(1 << 20), upstream, cross);
    }
}

#[test]
fn network_reproduces_tandem_under_heavy_drops() {
    for seed in [5u64, 991] {
        let (upstream, cross) = mix(seed, 800);
        // Tiny switch-2 buffer: the merge order decides exactly which
        // packets die, so any ordering divergence becomes a hard failure.
        assert_equivalent(&tandem_cfg(2_000), upstream, cross);
    }
}

#[test]
fn network_reproduces_tandem_with_synchronized_ties() {
    // Every packet created on a 1 µs grid: switch-2 arrival collisions
    // between cross and in-flight upstream packets are guaranteed.
    let flow = FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, 1),
        1,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    );
    let upstream: Vec<Packet> = (0..200u64)
        .map(|i| Packet::regular(100_000 + i, flow, 1000, SimTime::from_nanos(i / 4 * 1_000)))
        .collect();
    let cross: Vec<Packet> = (0..200u64)
        .map(|i| Packet::cross(i, flow, 650, SimTime::from_nanos(i / 2 * 1_000)))
        .collect();
    assert_equivalent(&tandem_cfg(8_000), upstream, cross);
}

#[test]
fn hop_sink_deliver_events_match_returned_deliveries() {
    let cfg = tandem_cfg(4_000);
    let (upstream, cross) = mix(42, 500);
    let injections: Vec<(NodeId, Packet)> = upstream
        .iter()
        .map(|p| (0usize, *p))
        .chain(cross.iter().map(|p| (1usize, *p)))
        .collect();
    let mut seen: Vec<(u64, u64)> = Vec::new();
    let mut sink = |ev: &HopEvent<'_>| {
        if ev.kind == HopKind::Deliver {
            seen.push((ev.at.as_nanos(), ev.packet.id.0));
        }
    };
    let run = rlir_sim::run_network_with(tandem_network(&cfg), &Chain, injections, &mut sink);
    let mut expected: Vec<(u64, u64)> = run
        .deliveries
        .iter()
        .map(|d| (d.delivered_at.as_nanos(), d.packet.id.0))
        .collect();
    seen.sort_unstable();
    expected.sort_unstable();
    assert_eq!(seen, expected, "sink saw a different delivery set");
}
