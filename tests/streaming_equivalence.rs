//! Differential tests: the streaming, allocation-free hot path must be
//! observationally identical to the seed's batched implementations.
//!
//! * [`rlir_sim::run_tandem_with`] (streaming merge, callback deliveries)
//!   vs [`rlir_sim::run_tandem_two_pass`] (the seed's buffer-then-merge):
//!   byte-identical `Delivery` sequences and queue counters on random
//!   traces, including drop-heavy and tie-heavy regimes.
//! * [`rlir_rli::RliSender::observe`] (borrowed scratch slice) vs the
//!   preserved allocating API `observe_alloc`: identical reference streams.

use proptest::prelude::*;
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{RliSender, StaticPolicy};
use rlir_sim::{run_tandem, run_tandem_two_pass, run_tandem_with, QueueConfig, TandemConfig};
use std::net::Ipv4Addr;

fn flow(i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, i, 1),
        1000 + i as u16,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

/// Build a sorted regular/cross packet stream from raw proptest tuples.
fn build_stream(raw: &[(u64, u32, u8)], cross: bool, id_base: u64) -> Vec<Packet> {
    let mut v: Vec<Packet> = raw
        .iter()
        .enumerate()
        .map(|(i, (at, size, f))| {
            let at = SimTime::from_nanos(*at);
            let size = 40 + size % 1460;
            if cross {
                Packet::cross(id_base + i as u64, flow(f % 8), size, at)
            } else {
                Packet::regular(id_base + i as u64, flow(f % 8), size, at)
            }
        })
        .collect();
    v.sort_by_key(|p| (p.created_at, p.id));
    v
}

fn tight_cfg(record_cross: bool, cap2: u64) -> TandemConfig {
    TandemConfig {
        switch1: QueueConfig {
            rate_bps: 8_000_000_000,
            capacity_bytes: 16 * 1024,
            processing_delay: SimDuration::from_nanos(500),
        },
        switch2: QueueConfig {
            rate_bps: 8_000_000_000,
            capacity_bytes: cap2,
            processing_delay: SimDuration::from_nanos(500),
        },
        link_delay: SimDuration::from_nanos(100),
        horizon: SimDuration::from_millis(1),
        record_cross,
    }
}

proptest! {
    /// The tentpole equivalence property: on arbitrary sorted traces, the
    /// streaming pipeline yields byte-identical deliveries and counters to
    /// the seed's two-pass merge.
    #[test]
    fn tandem_streaming_equals_two_pass(
        upstream in proptest::collection::vec((0u64..800_000, 0u32..2000, any::<u8>()), 0..300),
        cross in proptest::collection::vec((0u64..800_000, 0u32..2000, any::<u8>()), 0..300),
        record_cross in any::<bool>(),
        cap2 in 2_000u64..40_000
    ) {
        let up = build_stream(&upstream, false, 0);
        let cr = build_stream(&cross, true, 1 << 32);
        let cfg = tight_cfg(record_cross, cap2);

        let streaming = run_tandem(&cfg, up.iter().copied(), cr.iter().copied());
        let two_pass = run_tandem_two_pass(&cfg, up.iter().copied(), cr.iter().copied());

        prop_assert_eq!(&streaming.deliveries, &two_pass.deliveries);
        prop_assert_eq!(
            streaming.sw1().total_arrivals(), two_pass.sw1().total_arrivals());
        prop_assert_eq!(streaming.sw1().total_drops(), two_pass.sw1().total_drops());
        prop_assert_eq!(streaming.sw2().total_drops(), two_pass.sw2().total_drops());
        prop_assert_eq!(streaming.sw2().total_bytes(), two_pass.sw2().total_bytes());
        prop_assert!(
            (streaming.bottleneck_utilization() - two_pass.bottleneck_utilization()).abs()
                == 0.0,
            "utilization drifted"
        );

        // The callback form delivers the same sequence in the same order.
        let mut streamed = Vec::new();
        let stats = run_tandem_with(&cfg, up.iter().copied(), cr.iter().copied(), |d| {
            streamed.push(*d);
        });
        prop_assert_eq!(&streamed, &two_pass.deliveries);
        prop_assert_eq!(stats.sw2.total_arrivals(), two_pass.sw2().total_arrivals());
    }

    /// Shared-timestamp stress: many packets on identical timestamps make
    /// the (time, id) tie-break do all the ordering work.
    #[test]
    fn tandem_equivalence_under_heavy_ties(
        times in proptest::collection::vec(0u64..64, 1..200),
        cap2 in 1_500u64..8_000
    ) {
        let raw: Vec<(u64, u32, u8)> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (t * 1000, 600 + (i as u32 % 5) * 100, (i % 4) as u8))
            .collect();
        let up = build_stream(&raw, false, 0);
        let cr = build_stream(&raw, true, 1 << 32);
        let cfg = tight_cfg(true, cap2);
        let streaming = run_tandem(&cfg, up.iter().copied(), cr.iter().copied());
        let two_pass = run_tandem_two_pass(&cfg, up.into_iter(), cr.into_iter());
        prop_assert_eq!(streaming.deliveries, two_pass.deliveries);
    }

    /// The scratch-slice `observe` emits exactly the reference stream the
    /// allocating API does, packet for packet.
    #[test]
    fn sender_scratch_equals_allocating(
        sizes in proptest::collection::vec(40u32..1500, 1..300),
        n in 1u32..40
    ) {
        let mk = |targets: Vec<FlowKey>| {
            RliSender::new(
                SenderId(7),
                ClockModel::perfect(),
                StaticPolicy::one_in(n),
                targets,
            )
        };
        let targets = vec![flow(100), flow(101)];
        let mut scratch_sender = mk(targets.clone());
        let mut alloc_sender = mk(targets);
        for (i, size) in sizes.iter().enumerate() {
            let p = Packet::regular(i as u64, flow(1), *size, SimTime::from_nanos(i as u64 * 1000));
            let from_scratch: Vec<Packet> = scratch_sender.observe(&p).to_vec();
            let from_alloc = alloc_sender.observe_alloc(&p);
            prop_assert_eq!(from_scratch, from_alloc, "packet {}", i);
        }
        prop_assert_eq!(scratch_sender.refs_emitted(), alloc_sender.refs_emitted());
        prop_assert_eq!(scratch_sender.regulars_seen(), alloc_sender.regulars_seen());
    }
}

/// The owning and borrowing instrument adapters produce the same
/// interleaved stream (deterministic, so a plain test suffices).
#[test]
fn instrument_owning_equals_by_ref() {
    let stream: Vec<Packet> = (0..500)
        .map(|i| Packet::regular(i, flow((i % 5) as u8), 700, SimTime::from_nanos(i * 900)))
        .collect();
    let mk = || {
        RliSender::new(
            SenderId(3),
            ClockModel::perfect(),
            StaticPolicy::one_in(7),
            vec![flow(200)],
        )
    };
    let owned: Vec<Packet> = mk().instrument(stream.iter().copied()).collect();
    let mut sender = mk();
    let by_ref: Vec<Packet> = sender.instrument_by_ref(stream.iter().copied()).collect();
    assert_eq!(owned, by_ref);
    assert_eq!(sender.refs_emitted(), 500 / 7);
}
