//! Acceptance: two RLI taps attached to *different hops* of one simulation,
//! each validated against its own per-hop ground truth — the paper's
//! router-level deployment (§3) exercised through the measurement plane.
//!
//! Topology: a 3-switch line `S0 → S1 → S2 → host`. Sender 1 sits at the
//! injection point (S0) and interleaves references into the measured
//! stream; sender 2 is the mid-path instance at S1, emitting its own
//! reference stream from there (tx-stamped at S1, like the fat-tree's
//! core senders). Tap A listens to sender 1 at S1's ingress and must
//! recover the S0→S1 segment delay; tap B listens to sender 2 at the
//! delivery point and must recover the S1→host segment delay.

use rlir::plane::{MeasurementPlane, TapPoint, TapSpec, TruthRef};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{RliSender, StaticPolicy};
use rlir_sim::{run_network_with, Forwarder, Network, NodeId, Port, QueueConfig, RouteDecision};
use std::net::Ipv4Addr;

struct Chain;
impl Forwarder for Chain {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

/// Processing-dominated queues: 10 µs per hop, negligible serialisation, so
/// per-hop delay is size-independent and the interpolation is near-exact.
fn qcfg() -> QueueConfig {
    QueueConfig {
        rate_bps: 8_000_000_000_000, // 1000 B/ns: tx ≈ 0
        capacity_bytes: 1 << 24,
        processing_delay: SimDuration::from_micros(10),
    }
}

fn flow(i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, i),
        5000 + i as u16,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

fn ref_key(port: u16) -> FlowKey {
    FlowKey::udp(
        Ipv4Addr::new(10, 0, 0, 250),
        port,
        Ipv4Addr::new(10, 9, 0, 250),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

#[test]
fn two_taps_on_different_hops_recover_per_hop_truth() {
    let mut net = Network::default();
    let s0 = net.add_node("S0");
    let s1 = net.add_node("S1");
    let s2 = net.add_node("S2");
    let link = SimDuration::from_nanos(100);
    net.add_port(s0, Port::to_switch(qcfg(), s1, link));
    net.add_port(s1, Port::to_switch(qcfg(), s2, link));
    net.add_port(s2, Port::to_host(qcfg(), link));

    // Workload: three flows, 1200 packets, instrumented at S0 by sender 1.
    let mut injections: Vec<(NodeId, Packet)> = Vec::new();
    let mut sender1 = RliSender::new(
        SenderId(1),
        ClockModel::perfect(),
        StaticPolicy::one_in(10),
        vec![ref_key(40_000)],
    );
    for i in 0..1200u64 {
        let p = Packet::regular(i, flow((i % 3) as u8), 700, SimTime::from_nanos(i * 2_000));
        for r in sender1.observe(&p) {
            injections.push((s0, *r));
        }
        injections.push((s0, p));
    }
    // Sender 2: the mid-path instance at S1, its references tx-stamped
    // there (covers the S1 → host segment, like the fat-tree core senders).
    let mut sender2 = RliSender::new(
        SenderId(2),
        ClockModel::perfect(),
        StaticPolicy::one_in(1),
        vec![ref_key(41_000)],
    );
    for i in 0..240u64 {
        let at = SimTime::from_nanos(i * 10_000);
        let proxy = Packet::regular(0, ref_key(41_000), 700, at);
        for r in sender2.observe(&proxy) {
            injections.push((s1, *r));
        }
    }

    // Tap A: sender 1's receiver at S1 ingress — the S0→S1 hop.
    let mut plane = MeasurementPlane::new();
    let mut tap_a = TapSpec::new("S0→S1", TapPoint::NodeArrival(s1), SenderId(1));
    tap_a.truth = TruthRef::SinceInjection;
    plane.attach(tap_a);
    // Tap B: sender 2's receiver at the delivery point — the S1→host hop.
    let mut tap_b = TapSpec::new("S1→host", TapPoint::Delivery(s2), SenderId(2));
    tap_b.truth = TruthRef::SinceArrivalAt(vec![s1]);
    plane.attach(tap_b);

    let run = run_network_with(net, &Chain, injections, &mut plane);
    assert!(run.deliveries.len() > 1300, "{}", run.deliveries.len());
    let report = plane.finish();

    // Per-hop ground truth (no queueing at this load): one hop costs
    // 10 µs processing + ~0 tx + 100 ns link.
    let hop_ns = 10_100.0;
    let tap_a = &report.taps[0];
    let tap_b = &report.taps[1];
    assert!(tap_a.report.counters.estimated > 1000);
    assert!(tap_b.report.counters.estimated > 1000);

    // Tap A: estimates and truth must both equal one hop.
    for row in tap_a.report.flows.report(50) {
        let err = row.mean_rel_err.expect("truth recorded");
        assert!(err < 0.01, "tap A flow {} err {err}", row.flow);
        let truth = row.true_mean.expect("truth recorded");
        assert!(
            (truth - hop_ns).abs() < 50.0,
            "tap A truth {truth} ≠ one hop"
        );
    }
    // Tap B: estimates and truth must both equal the remaining two queues
    // (S1 and S2) — per-hop truth, not end-to-end.
    for row in tap_b.report.flows.report(50) {
        let err = row.mean_rel_err.expect("truth recorded");
        assert!(err < 0.01, "tap B flow {} err {err}", row.flow);
        let truth = row.true_mean.expect("truth recorded");
        assert!(
            (truth - 2.0 * hop_ns).abs() < 100.0,
            "tap B truth {truth} ≠ two hops"
        );
    }
    // And the segment view separates the hops.
    let segs = report.segments();
    assert_eq!(segs.len(), 2);
    assert!(segs[0].name == "S0→S1" && segs[1].name == "S1→host");
    assert!(
        segs[1].est_mean_ns > segs[0].est_mean_ns * 1.5,
        "downstream segment must cost ~2 hops vs 1: {} vs {}",
        segs[1].est_mean_ns,
        segs[0].est_mean_ns
    );
}
