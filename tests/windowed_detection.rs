//! Integration: per-packet estimate logs → time-windowed anomaly detection
//! (the "when did it happen" companion to segment localization), driven end
//! to end through a real receiver.

use rlir::windowed::{localize_windows, SegmentWindows, WindowedConfig};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{Interpolator, ReceiverConfig, RliReceiver, RliSender, StaticPolicy};
use std::net::Ipv4Addr;

fn flow(i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, i),
        5000,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

/// Simulate a path whose delay is ~8 µs except for a 12 ms congestion event
/// at t ∈ [40 ms, 52 ms) where it jumps to ~300 µs, and verify the windowed
/// detector pinpoints the event from the receiver's estimate log.
#[test]
fn transient_congestion_is_pinned_to_its_window() {
    let mut sender = RliSender::new(
        SenderId(1),
        ClockModel::perfect(),
        StaticPolicy::one_in(10),
        vec![FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 250),
            40_000,
            Ipv4Addr::new(10, 9, 0, 250),
            rlir_net::wire::RLI_UDP_PORT,
        )],
    );
    let mut rx: RliReceiver = RliReceiver::new(ReceiverConfig {
        sender: SenderId(1),
        clock: ClockModel::perfect(),
        interpolator: Interpolator::Linear,
        max_buffer: 1 << 20,
        record_estimates: true,
        epoch_ns: None,
    });

    let delay_at = |t: SimTime| {
        let ms = t.as_nanos() / 1_000_000;
        if (40..52).contains(&ms) {
            SimDuration::from_micros(300)
        } else {
            SimDuration::from_micros(8)
        }
    };
    // 100 ms of packets every 25 µs.
    for i in 0..4000u64 {
        let at = SimTime::from_micros(i * 25);
        let d = delay_at(at);
        let p = Packet::regular(i, flow((i % 5) as u8), 700, at);
        rx.on_packet(at + d, &p, Some(d));
        for r in sender.observe(&p) {
            rx.on_packet(at + d, r, None);
        }
    }
    let report = rx.finish();
    assert!(
        report.estimates.len() > 3000,
        "estimate log missing: {}",
        report.estimates.len()
    );

    let seg = SegmentWindows::build("S1→R1", &report.estimates, 4_000_000); // 4 ms windows
    let findings = localize_windows(
        &[seg],
        &WindowedConfig {
            window_ns: 4_000_000,
            factor: 3.0,
            min_samples: 10,
        },
    );
    assert!(!findings.is_empty(), "congestion event not detected");
    // Every flagged window must overlap the event, allowing one window of
    // smear on each side: interpolation brackets that straddle the event's
    // edges blend high and low delays into the adjacent windows.
    for f in &findings {
        let start_ms = f.window_start_ns / 1_000_000;
        assert!(
            (36..=52).contains(&start_ms),
            "false positive at {start_ms} ms (severity {:.1})",
            f.severity
        );
    }
    // And the strongest finding is inside the event proper.
    let top_ms = findings[0].window_start_ns / 1_000_000;
    assert!((40..52).contains(&top_ms), "top finding at {top_ms} ms");
}

/// Without the opt-in, no log is kept (memory stays bounded) — and the
/// per-flow aggregation is unchanged either way.
#[test]
fn estimate_log_is_opt_in_and_lossless() {
    let run = |record: bool| {
        let mut rx: RliReceiver = RliReceiver::new(ReceiverConfig {
            record_estimates: record,
            ..ReceiverConfig::for_sender(SenderId(1))
        });
        rx.on_reference(
            SimTime::from_micros(10),
            &rlir_net::ReferenceInfo {
                sender: SenderId(1),
                seq: 0,
                tx_timestamp: SimTime::ZERO,
            },
        );
        for i in 0..50u64 {
            rx.on_regular(SimTime::from_micros(11 + i), flow(1), None);
        }
        rx.on_reference(
            SimTime::from_micros(100),
            &rlir_net::ReferenceInfo {
                sender: SenderId(1),
                seq: 1,
                tx_timestamp: SimTime::from_micros(89),
            },
        );
        rx.finish()
    };
    let with = run(true);
    let without = run(false);
    assert_eq!(with.estimates.len(), 50);
    assert!(without.estimates.is_empty());
    assert_eq!(with.counters.estimated, without.counters.estimated);
    assert_eq!(
        with.flows.get(&flow(1)).unwrap().est.mean(),
        without.flows.get(&flow(1)).unwrap().est.mean()
    );
}
