//! The `on_watermark` contract under fault regimes (proptest).
//!
//! Streaming sinks — the measurement plane, the closed-loop detector —
//! trust two properties of the engine's watermark callback: watermarks are
//! strictly increasing, and no hop event emitted after a watermark carries
//! an earlier timestamp. PR 6's fault plane gives the engine new ways to
//! perturb event flow mid-run (dead links rerouted or blackholed, loss
//! bursts killing packets at arrival, service-time degradation stretching
//! departures), so these properties are re-asserted here over *random*
//! fault scripts on a drop-heavy diamond network, together with packet
//! conservation: every injected packet is delivered or accounted to
//! exactly one drop counter, fault drops included.

use proptest::prelude::*;
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_sim::{
    run_network_streamed_opts, DeadPorts, FaultEvent, FaultKind, FaultScript, Forwarder, HopEvent,
    HopSink, Network, NodeId, Port, QueueConfig, RouteDecision, RunOptions, StreamedDelivery,
};
use std::net::Ipv4Addr;

/// Shallow queues so random bursts genuinely overflow: the contract must
/// hold while queue drops, route drops and fault drops all fire.
fn qcfg() -> QueueConfig {
    QueueConfig {
        rate_bps: 1_000_000_000,
        capacity_bytes: 4_000,
        processing_delay: SimDuration::from_nanos(50),
    }
}

/// A diamond: 0 fans out to 1 or 2 (ECMP by packet id), both forward to 3.
/// Link faults on node 0's ports exercise the reroute path; faults on the
/// middle nodes' single egress exercise the blackhole path.
fn diamond() -> Network {
    let mut net = Network::default();
    let s = net.add_node("s");
    let a = net.add_node("a");
    let b = net.add_node("b");
    let t = net.add_node("t");
    net.add_port(s, Port::to_switch(qcfg(), a, SimDuration::from_nanos(20)));
    net.add_port(s, Port::to_switch(qcfg(), b, SimDuration::from_nanos(20)));
    net.add_port(a, Port::to_switch(qcfg(), t, SimDuration::from_nanos(20)));
    net.add_port(b, Port::to_switch(qcfg(), t, SimDuration::from_nanos(20)));
    net.add_port(t, Port::to_host(qcfg(), SimDuration::from_nanos(20)));
    net
}

struct DiamondForwarder;

impl Forwarder for DiamondForwarder {
    fn route(&self, node: NodeId, p: &Packet) -> RouteDecision {
        match node {
            0 => RouteDecision::Forward((p.id.0 % 2) as usize),
            1 | 2 => RouteDecision::Forward(0),
            _ => RouteDecision::Deliver,
        }
    }

    fn reroute(
        &self,
        node: NodeId,
        _p: &Packet,
        chosen: usize,
        dead: &DeadPorts<'_>,
    ) -> RouteDecision {
        // ECMP fallback exists only at the fan-out node.
        if node == 0 && !dead.is_dead(chosen ^ 1) {
            RouteDecision::Forward(chosen ^ 1)
        } else {
            RouteDecision::Drop
        }
    }
}

fn pkt(id: u64, at_ns: u64) -> Packet {
    Packet::regular(
        id,
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, 1),
            1000,
            Ipv4Addr::new(10, 1, 0, 1),
            80,
        ),
        1000,
        SimTime::from_nanos(at_ns),
    )
}

/// Watermark-contract monitor.
#[derive(Default)]
struct Contract {
    marks: Vec<u64>,
    current: u64,
    behind: usize,
    hops: u64,
}

impl HopSink for Contract {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.hops += 1;
        if ev.at.as_nanos() < self.current {
            self.behind += 1;
        }
    }
    fn on_watermark(&mut self, watermark: SimTime) {
        self.marks.push(watermark.as_nanos());
        self.current = watermark.as_nanos();
    }
}

/// One random timed fault. `(kind, node, port, at, extra)` raw draws are
/// mapped onto the diamond's real topology.
fn arb_fault() -> impl Strategy<Value = (u8, usize, usize, u64, u64)> {
    (0u8..6, 0usize..4, 0usize..2, 0u64..40_000, 1u64..2_000)
}

proptest! {
    #[test]
    fn watermarks_stay_monotone_under_random_fault_scripts(
        raw_faults in proptest::collection::vec(arb_fault(), 0..12),
        arrivals in proptest::collection::vec(0u64..40_000, 1..120),
    ) {
        let mut events = Vec::new();
        for (kind, node, port, at, extra) in raw_faults {
            let at = SimTime::from_nanos(at);
            // Middle/sink nodes have one egress; the fan-out node has two.
            let port = if node == 0 { port } else { 0 };
            let kind = match kind {
                0 => FaultKind::LinkDown { node, port },
                1 => FaultKind::LinkUp { node, port },
                2 => FaultKind::SlowSwitch { node, extra: SimDuration::from_nanos(extra) },
                3 => FaultKind::ClearSwitch { node },
                4 => FaultKind::LossBurstStart { node },
                _ => FaultKind::LossBurstEnd { node },
            };
            events.push(FaultEvent { at, kind });
        }
        let script = FaultScript::new(events);
        let injections: Vec<(NodeId, Packet)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, &at)| (0usize, pkt(i as u64, at)))
            .collect();
        let injected = injections.len() as u64;

        let mut sink = Contract::default();
        let stats = run_network_streamed_opts(
            diamond(),
            &DiamondForwarder,
            injections,
            &mut sink,
            RunOptions { faults: Some(&script), ..RunOptions::default() },
            &mut |_d: &StreamedDelivery<'_>| {},
        );

        // Watermarks strictly increase …
        for w in sink.marks.windows(2) {
            prop_assert!(w[0] < w[1], "watermark regressed: {:?}", w);
        }
        // … and no event runs behind the watermark, faults or not.
        prop_assert_eq!(sink.behind, 0, "events behind the watermark");
        prop_assert!(sink.hops > 0);

        // Conservation: one fate per packet. Fault-induced kills (loss
        // bursts, blackholed dead links) are accounted *as* route drops,
        // with `fault_drops` the attributing sub-counter — so the route
        // column already contains them and the books must still balance.
        let queue: u64 = stats.queue_drops.iter().sum();
        let route: u64 = stats.route_drops.iter().sum();
        prop_assert_eq!(
            stats.delivered + queue + route,
            injected,
            "delivered {} queue {} route {} != injected {}",
            stats.delivered, queue, route, injected
        );
        prop_assert!(
            stats.fault_drops <= route,
            "fault sub-counter {} exceeds route drops {}",
            stats.fault_drops, route
        );
    }
}
