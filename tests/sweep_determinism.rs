//! Thread-count invariance of the shared sweep executor.
//!
//! The `SweepRunner` contract: an N-thread run is **byte-identical** to a
//! 1-thread run — point order is deterministic, every point's RNG seed is
//! derived from the scenario seed (never from scheduling), and aggregation
//! sees outcomes in point order. These tests pin that contract on the two
//! scenario families whose points are seed-sensitive: the Fig. 5 loss
//! sweep and the asymmetric-routing sweep. Floats are compared via
//! `to_bits`, so even a ULP of scheduling-dependent drift fails.

use rlir::experiment::{
    run_asymmetric, run_drop_aware, run_faults, run_incast, run_localize, run_loss_sweep_on,
    AsymmetricConfig, DropAwareConfig, FaultsConfig, IncastConfig, LocalizeConfig, LossPoint,
    LossSweepConfig, TwoHopConfig,
};
use rlir_exec::SweepRunner;
use rlir_net::time::SimDuration;
use rlir_rli::PolicyKind;
use rlir_trace::generate;

fn loss_points(runner: &SweepRunner) -> Vec<LossPoint> {
    let base = TwoHopConfig {
        policy: PolicyKind::Static { n: 40 },
        ..TwoHopConfig::paper(5, SimDuration::from_millis(30))
    };
    let regular = generate(&base.regular_trace());
    let cross = generate(&base.cross_trace());
    let cfg = LossSweepConfig {
        base,
        targets: vec![0.7, 0.82, 0.9, 0.95],
    };
    run_loss_sweep_on(&cfg, &regular, &cross, runner)
}

fn assert_loss_points_identical(a: &[LossPoint], b: &[LossPoint]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.target_utilization.to_bits(),
            y.target_utilization.to_bits()
        );
        assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
        assert_eq!(x.loss_with_refs.to_bits(), y.loss_with_refs.to_bits());
        assert_eq!(x.loss_without_refs.to_bits(), y.loss_without_refs.to_bits());
        assert_eq!(x.refs_emitted, y.refs_emitted);
    }
}

#[test]
fn loss_sweep_is_thread_count_invariant() {
    let one = loss_points(&SweepRunner::single());
    for threads in [2, 4, 7] {
        let n = loss_points(&SweepRunner::new(threads));
        assert_loss_points_identical(&one, &n);
    }
}

#[test]
fn loss_sweep_points_are_ordered_and_seeded_independently() {
    let pts = loss_points(&SweepRunner::new(3));
    for w in pts.windows(2) {
        assert!(w[0].target_utilization < w[1].target_utilization);
    }
    // Distinct derived seeds → distinct injector streams → the realised
    // utilizations are not accidentally identical across points.
    assert!(pts[0].utilization < pts[3].utilization);
}

#[test]
fn asymmetric_sweep_is_thread_count_invariant() {
    let mut cfg = AsymmetricConfig::paper(13, SimDuration::from_millis(30));
    cfg.policy = PolicyKind::Static { n: 40 };
    cfg.reverse_utilizations = vec![0.5, 0.8, 0.93];
    let one = run_asymmetric(&cfg, &SweepRunner::single());
    let many = run_asymmetric(&cfg, &SweepRunner::new(4));
    assert_eq!(one.len(), many.len());
    for (x, y) in one.iter().zip(&many) {
        assert_eq!(
            x.forward_utilization.to_bits(),
            y.forward_utilization.to_bits()
        );
        assert_eq!(
            x.reverse_utilization.to_bits(),
            y.reverse_utilization.to_bits()
        );
        assert_eq!(
            x.forward_median_error.to_bits(),
            y.forward_median_error.to_bits()
        );
        assert_eq!(
            x.reverse_median_error.to_bits(),
            y.reverse_median_error.to_bits()
        );
        assert_eq!(x.rtt_median_error.to_bits(), y.rtt_median_error.to_bits());
        assert_eq!(
            x.attribution_accuracy.to_bits(),
            y.attribution_accuracy.to_bits()
        );
        assert_eq!(x.paired_flows, y.paired_flows);
    }
}

#[test]
fn drop_aware_sweep_is_thread_count_invariant() {
    // The loss-heavy live-tap scenario: realised losses, drop-aware
    // counters and both views' aggregates must be bit-identical for any
    // thread count.
    let mut cfg = DropAwareConfig::paper(37, SimDuration::from_millis(30));
    cfg.policy = PolicyKind::Static { n: 40 };
    cfg.offered_loads = vec![0.6, 0.95, 1.1];
    let one = run_drop_aware(&cfg, &SweepRunner::single());
    for threads in [2, 4] {
        let many = run_drop_aware(&cfg, &SweepRunner::new(threads));
        assert_eq!(one.len(), many.len());
        for (x, y) in one.iter().zip(&many) {
            assert_eq!(x.offered, y.offered);
            assert_eq!(x.downstream_loss.to_bits(), y.downstream_loss.to_bits());
            assert_eq!(x.live_metered, y.live_metered);
            assert_eq!(x.dropped_after_metering, y.dropped_after_metering);
            assert_eq!(x.live_est_mean_ns.to_bits(), y.live_est_mean_ns.to_bits());
            assert_eq!(
                x.delivered_est_mean_ns.to_bits(),
                y.delivered_est_mean_ns.to_bits()
            );
            assert_eq!(x.survivor_bias.to_bits(), y.survivor_bias.to_bits());
            assert_eq!(x.epochs.len(), y.epochs.len());
            for (a, b) in x.epochs.iter().zip(&y.epochs) {
                assert_eq!(a.estimated, b.estimated);
                assert_eq!(a.dropped_after_metering, b.dropped_after_metering);
                assert_eq!(
                    a.est_mean().unwrap_or(f64::NAN).to_bits(),
                    b.est_mean().unwrap_or(f64::NAN).to_bits()
                );
            }
        }
    }
}

#[test]
fn faults_sweep_is_thread_count_invariant() {
    // The closed-loop sweep adds a twist: detection *truncates* each run
    // via the stop flag, so the engine-event counts — and therefore the
    // detection watermarks behind every TTL — must themselves be
    // reproduced bit-for-bit regardless of worker count.
    let mut cfg = FaultsConfig::paper(31, SimDuration::from_millis(20));
    cfg.base.policy = PolicyKind::Static { n: 30 };
    cfg.utilizations = vec![0.05, 0.2];
    cfg.onsets = vec![SimDuration::from_millis(4)];
    cfg.trials = 2;
    let one = run_faults(&cfg, &SweepRunner::single());
    for threads in [2, 4] {
        let many = run_faults(&cfg, &SweepRunner::new(threads));
        assert_eq!(one.len(), many.len());
        for (x, y) in one.iter().zip(&many) {
            assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
            assert_eq!(x.onset_ns, y.onset_ns);
            assert_eq!(
                (x.trials, x.detected, x.correct, x.false_positives),
                (y.trials, y.detected, y.correct, y.false_positives)
            );
            assert_eq!(x.mean_ttl_ns.to_bits(), y.mean_ttl_ns.to_bits());
        }
    }
}

#[test]
fn incast_sweep_is_shard_count_invariant() {
    // `--shards` now reaches the incast scenario; the pod-sharded keyed
    // engine's 1-shard run is the identity baseline (the keyed tie order
    // is the contract, not the sequential push order), so a 2-shard run
    // must reproduce every point bit-for-bit.
    let mut cfg = IncastConfig::paper(17, SimDuration::from_millis(10));
    cfg.base.policy = PolicyKind::Static { n: 30 };
    cfg.fan_in = vec![2, 4];
    cfg.base.shards = Some(1);
    let one = run_incast(&cfg, &SweepRunner::single());
    cfg.base.shards = Some(2);
    let two = run_incast(&cfg, &SweepRunner::single());
    assert_eq!(one.len(), two.len());
    for (x, y) in one.iter().zip(&two) {
        assert_eq!(x.fan_in, y.fan_in);
        assert_eq!(x.seg1_median_error.to_bits(), y.seg1_median_error.to_bits());
        assert_eq!(x.seg2_median_error.to_bits(), y.seg2_median_error.to_bits());
        assert_eq!(
            x.seg2_true_delay_us.to_bits(),
            y.seg2_true_delay_us.to_bits()
        );
        assert_eq!(x.demux_accuracy.to_bits(), y.demux_accuracy.to_bits());
        assert_eq!(x.measured_delivered, y.measured_delivered);
        assert_eq!(x.refs_emitted, y.refs_emitted);
        assert_eq!(x.seg2_epochs.len(), y.seg2_epochs.len());
        for (a, b) in x.seg2_epochs.iter().zip(&y.seg2_epochs) {
            assert_eq!(a.estimated, b.estimated);
            assert_eq!(
                a.est_mean().unwrap_or(f64::NAN).to_bits(),
                b.est_mean().unwrap_or(f64::NAN).to_bits()
            );
        }
    }
}

#[test]
fn localize_sweep_is_shard_count_invariant() {
    // Same contract for the localization sweep: victim draws, detector
    // state and flagged segments all downstream of the engine stream, so
    // shards ∈ {1, 2} must agree bit-for-bit.
    let mut cfg = LocalizeConfig::paper(23, SimDuration::from_millis(10));
    cfg.base.policy = PolicyKind::Static { n: 30 };
    cfg.utilizations = vec![0.1];
    cfg.trials = 2;
    cfg.base.shards = Some(1);
    let one = run_localize(&cfg, &SweepRunner::single());
    cfg.base.shards = Some(2);
    let two = run_localize(&cfg, &SweepRunner::single());
    assert_eq!(one.len(), two.len());
    for (x, y) in one.iter().zip(&two) {
        assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
        assert_eq!(
            (x.trials, x.correct, x.flagged),
            (y.trials, y.correct, y.flagged)
        );
        assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits());
        assert_eq!(x.mean_severity.to_bits(), y.mean_severity.to_bits());
    }
}

#[test]
fn localize_sweep_is_thread_count_invariant() {
    // The victim draw and the per-trial workload both come from the derived
    // point seed, so any thread count must flag the same segments with
    // bit-identical severities.
    let mut cfg = LocalizeConfig::paper(29, SimDuration::from_millis(15));
    cfg.base.policy = PolicyKind::Static { n: 30 };
    cfg.utilizations = vec![0.05, 0.2];
    cfg.trials = 2;
    let one = run_localize(&cfg, &SweepRunner::single());
    for threads in [2, 4] {
        let many = run_localize(&cfg, &SweepRunner::new(threads));
        assert_eq!(one.len(), many.len());
        for (x, y) in one.iter().zip(&many) {
            assert_eq!(x.utilization.to_bits(), y.utilization.to_bits());
            assert_eq!(
                (x.trials, x.correct, x.flagged),
                (y.trials, y.correct, y.flagged)
            );
            assert_eq!(x.accuracy.to_bits(), y.accuracy.to_bits());
            assert_eq!(x.mean_severity.to_bits(), y.mean_severity.to_bits());
        }
    }
}
