//! Integration: the two-hop pipeline reproduces the paper's §4.2 trends at
//! reduced scale (shapes, not absolute values).

use rlir::experiment::{run_two_hop_on, CrossSpec, TwoHopConfig};
use rlir_net::time::SimDuration;
use rlir_rli::{AdaptiveConfig, PolicyKind};
use rlir_stats::Ecdf;
use rlir_trace::{generate, Trace};

fn traces(seed: u64, ms: u64) -> (Trace, Trace) {
    let cfg = TwoHopConfig::paper(seed, SimDuration::from_millis(ms));
    (generate(&cfg.regular_trace()), generate(&cfg.cross_trace()))
}

fn median(xs: &[f64]) -> f64 {
    Ecdf::new(xs.iter().copied().filter(|x| x.is_finite()).collect())
        .median()
        .expect("non-empty error set")
}

fn run(
    regular: &Trace,
    cross: &Trace,
    policy: PolicyKind,
    spec: CrossSpec,
    ms: u64,
) -> rlir::experiment::TwoHopOutcome {
    let mut cfg = TwoHopConfig::paper(5, SimDuration::from_millis(ms));
    cfg.policy = policy;
    cfg.cross = spec;
    run_two_hop_on(&cfg, regular, cross)
}

#[test]
fn accuracy_improves_with_utilization() {
    let (regular, cross) = traces(5, 60);
    let lo = run(
        &regular,
        &cross,
        PolicyKind::Static { n: 100 },
        CrossSpec::Uniform {
            target_utilization: 0.55,
        },
        60,
    );
    let hi = run(
        &regular,
        &cross,
        PolicyKind::Static { n: 100 },
        CrossSpec::Uniform {
            target_utilization: 0.93,
        },
        60,
    );
    assert!(
        median(&hi.mean_errors) < median(&lo.mean_errors),
        "high-util median {} should beat low-util {}",
        median(&hi.mean_errors),
        median(&lo.mean_errors)
    );
    // The absolute-delay explanation: true delays grow with utilization.
    assert!(hi.avg_true_delay_ns > 2.0 * lo.avg_true_delay_ns);
}

#[test]
fn adaptive_beats_static_at_same_utilization() {
    let (regular, cross) = traces(6, 60);
    let spec = CrossSpec::Uniform {
        target_utilization: 0.93,
    };
    let stat = run(&regular, &cross, PolicyKind::Static { n: 100 }, spec, 60);
    let adpt = run(
        &regular,
        &cross,
        PolicyKind::Adaptive(AdaptiveConfig::paper_default()),
        spec,
        60,
    );
    // §4.2: the local link runs ~22%, so adaptive locks to 1-and-10 — ten
    // times the reference rate of static 1-and-100 — and wins on accuracy.
    assert!(adpt.refs_emitted > 5 * stat.refs_emitted);
    assert!(
        median(&adpt.mean_errors) <= median(&stat.mean_errors),
        "adaptive {} vs static {}",
        median(&adpt.mean_errors),
        median(&stat.mean_errors)
    );
}

#[test]
fn std_dev_estimates_follow_same_trend() {
    let (regular, cross) = traces(7, 60);
    let spec = |u| CrossSpec::Uniform {
        target_utilization: u,
    };
    let adaptive = PolicyKind::Adaptive(AdaptiveConfig::paper_default());
    let lo = run(&regular, &cross, adaptive.clone(), spec(0.55), 60);
    let hi = run(&regular, &cross, adaptive, spec(0.93), 60);
    assert!(!lo.std_errors.is_empty() && !hi.std_errors.is_empty());
    assert!(
        median(&hi.std_errors) < median(&lo.std_errors),
        "std-dev errors should also improve with utilization: {} vs {}",
        median(&hi.std_errors),
        median(&lo.std_errors)
    );
}

#[test]
fn unestimable_packets_are_bounded() {
    let (regular, cross) = traces(8, 40);
    let out = run(
        &regular,
        &cross,
        PolicyKind::Static { n: 100 },
        CrossSpec::Uniform {
            target_utilization: 0.8,
        },
        40,
    );
    // Only packets before the first / after the last reference are
    // unestimable; with refs every ~100 packets that is a tiny fraction.
    let frac = out.receiver.unestimated as f64
        / (out.receiver.estimated + out.receiver.unestimated).max(1) as f64;
    assert!(frac < 0.02, "unestimated fraction {frac}");
}

#[test]
fn reference_streams_measure_what_regular_packets_see() {
    // With no cross traffic and light load, per-flow estimates should be
    // near-exact: delay locality holds trivially.
    let (regular, cross) = traces(9, 40);
    let out = run(
        &regular,
        &cross,
        PolicyKind::Static { n: 20 },
        CrossSpec::None,
        40,
    );
    let med = median(&out.mean_errors);
    assert!(med < 0.15, "light-load median error {med}");
    assert_eq!(out.regular_loss, 0.0, "no loss expected at 22% load");
}
