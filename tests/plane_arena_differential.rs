//! Shared-arena plane vs per-tap oracle.
//!
//! PR 8 rebuilds the measurement plane's hot state around shared stores:
//! one plane-wide `FlowArena` for flow accumulators (taps hold handles
//! into one contiguous store keyed `(tap, flow)`) and one shared calendar
//! wheel for every streaming reorder window (keyed `(at, tie, id, tap)`,
//! drained in a single watermark pass). The pre-PR-8 layout — a private
//! `FlowTable` plus a `BinaryHeap` reorder window per tap — is retained
//! behind `StateLayout::PerTap` as the differential oracle.
//!
//! These tests pin the two layouts **byte-identical** (floats compared
//! via `to_bits` inside the digests) on calm, burst+drop, and
//! budget-shedding regimes: per-tap flow reports, error vectors, segment
//! aggregates, epoch series, and the plane's shed/late/peak accounting.

use rlir::experiment::{run_fattree, FatTreeExpConfig, FatTreeOutcome};
use rlir_net::time::SimDuration;
use rlir_rli::{EpochSnapshot, FlowTable, PolicyKind};
use rlir_trace::BurstShape;

fn fold(h: u64, bits: u64) -> u64 {
    h.rotate_left(7) ^ bits.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Digest a per-flow table: every row's flow, counts, moments and
/// quantiles, bit for bit.
fn digest_flows(mut h: u64, flows: &FlowTable) -> u64 {
    h = fold(h, flows.flow_count() as u64);
    h = fold(h, flows.estimate_count());
    for row in flows.report(1) {
        h = fold(h, row.packets);
        h = fold(h, row.est_mean.to_bits());
        h = fold(h, row.true_mean.unwrap_or(f64::NAN).to_bits());
        h = fold(h, row.est_std.unwrap_or(f64::NAN).to_bits());
        h = fold(h, row.true_std.unwrap_or(f64::NAN).to_bits());
        h = fold(h, row.est_quantile.unwrap_or(f64::NAN).to_bits());
        h = fold(h, row.true_quantile.unwrap_or(f64::NAN).to_bits());
    }
    h
}

/// Digest an epoch series: counters and moments per epoch.
fn digest_epochs(mut h: u64, epochs: &[EpochSnapshot]) -> u64 {
    h = fold(h, epochs.len() as u64);
    for e in epochs {
        h = fold(h, e.epoch);
        h = fold(h, e.regulars_seen);
        h = fold(h, e.estimated);
        h = fold(h, e.unestimated);
        h = fold(h, e.refs_accepted);
        h = fold(h, e.dropped_after_metering);
        h = fold(h, e.est_mean().unwrap_or(f64::NAN).to_bits());
        h = fold(h, e.true_mean().unwrap_or(f64::NAN).to_bits());
    }
    h
}

/// Digest everything the plane reports: per-tap flow tables and epoch
/// series (via the per-segment views), error vectors, segment aggregates,
/// and the shed/late/pending accounting.
fn digest(out: &FatTreeOutcome) -> u64 {
    let mut h = 0u64;
    h = digest_flows(h, &out.seg1_flows);
    h = digest_flows(h, &out.seg2_flows);
    for errs in [&out.seg1_errors, &out.seg2_errors] {
        h = fold(h, errs.len() as u64);
        h = errs.iter().fold(h, |h, e| fold(h, e.to_bits()));
    }
    for s in &out.segments {
        h = s.name.bytes().fold(h, |h, b| fold(h, b as u64));
        h = fold(h, s.est_mean_ns.to_bits());
        h = fold(h, s.true_mean_ns.to_bits());
        h = fold(h, s.packets);
    }
    for (name, series) in &out.segment_epochs {
        h = name.bytes().fold(h, |h, b| fold(h, b as u64));
        h = digest_epochs(h, series);
    }
    h = digest_epochs(h, &out.seg1_epochs);
    h = digest_epochs(h, &out.seg2_epochs);
    h = fold(h, out.peak_pending as u64);
    h = fold(h, out.peak_pending_total as u64);
    h = fold(h, out.late);
    h = fold(h, out.shed);
    h
}

/// A drop- and tie-heavy regime: synchronized bursts overload the
/// destination downlink (equal-timestamp clusters, queue drops).
fn stressed(seed: u64) -> FatTreeExpConfig {
    let mut cfg = FatTreeExpConfig::paper(seed, SimDuration::from_millis(20));
    cfg.policy = PolicyKind::Static { n: 30 };
    cfg.n_src_tors = 4;
    cfg.measured_load = 0.30;
    cfg.burst = Some(BurstShape {
        period: SimDuration::from_millis(5),
        duty: 0.2,
    });
    cfg
}

#[test]
fn shared_arena_matches_per_tap_oracle() {
    let mut calm = FatTreeExpConfig::paper(11, SimDuration::from_millis(20));
    calm.policy = PolicyKind::Static { n: 30 };
    // A budget tight enough to shed: identical shedding decisions require
    // the two layouts to agree on the plane-wide pending count at every
    // single observation.
    let mut squeezed = stressed(29);
    squeezed.plane_budget = Some(192);
    for (label, base) in [
        ("calm", calm),
        ("burst+drops", stressed(17)),
        ("budget-shed", squeezed),
    ] {
        let shared = run_fattree(&base);
        let mut oracle_cfg = base.clone();
        oracle_cfg.per_tap_plane = true;
        let oracle = run_fattree(&oracle_cfg);
        assert_eq!(
            digest(&shared),
            digest(&oracle),
            "{label}: shared-arena plane drifted from the per-tap oracle"
        );
        if label == "budget-shed" {
            assert!(shared.shed > 0, "budget regime must actually shed");
            // References are always admitted past the budget, so the bound
            // is on regulars: the budgeted peak must sit well below the
            // same regime's unbudgeted peak.
            let mut free = base.clone();
            free.plane_budget = None;
            let unbudgeted = run_fattree(&free);
            assert!(
                shared.peak_pending_total < unbudgeted.peak_pending_total / 2,
                "budget must curb plane-wide pending: {} vs unbudgeted {}",
                shared.peak_pending_total,
                unbudgeted.peak_pending_total
            );
        } else {
            assert_eq!(shared.late, 0, "{label}: window must cover the lag");
        }
    }
}

#[test]
fn shared_arena_matches_per_tap_under_buffered_sort() {
    // The arena also carries the flow state under the buffered-sort drain
    // (per-tap backlogs in both layouts): pin that corner too.
    let mut cfg = stressed(31);
    cfg.buffered_oracle = true;
    let shared = run_fattree(&cfg);
    let mut oracle_cfg = cfg.clone();
    oracle_cfg.per_tap_plane = true;
    let oracle = run_fattree(&oracle_cfg);
    assert_eq!(
        digest(&shared),
        digest(&oracle),
        "buffered-sort: shared-arena plane drifted from the per-tap oracle"
    );
}
