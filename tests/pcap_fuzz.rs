//! Hostile-ingest fuzzing: proptest-mutated pcap byte streams against the
//! lenient decoder and replay source.
//!
//! The contract under test (PR 10's hardening):
//!
//! * **Strict is the oracle.** On a clean capture, lenient mode must be
//!   byte-identical to strict — same records, zero skip/resync counters.
//! * **Lenient survives anything.** Under arbitrary byte flips, splices,
//!   deletions and truncations of the record stream, the lenient decoder
//!   must never error and never panic; damage is skipped and *counted*,
//!   never silently absorbed.
//! * **Replay stays monotone.** A lenient [`PcapReplaySource`] must emit
//!   non-decreasing injection times no matter how the capture is mangled
//!   (time regressions are clamped, not emitted out of order).

use proptest::prelude::*;
use rlir_net::packet::Packet;
use rlir_net::time::SimTime;
use rlir_net::FlowKey;
use rlir_sim::InjectionSource;
use rlir_trace::{EntryMap, PcapRecords, PcapReplaySource, PcapWriter};
use std::net::Ipv4Addr;

/// A clean capture of `n` TCP header-only records (56 bytes each after
/// the 24-byte global header).
fn clean_capture(n: u64) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).unwrap();
    for i in 0..n {
        w.write(&Packet::regular(
            i,
            FlowKey::tcp(
                Ipv4Addr::new(10, 0, (i % 3) as u8, 1),
                1000 + (i % 17) as u16,
                Ipv4Addr::new(10, 1, 0, 1),
                80,
            ),
            400 + (i % 5) as u32 * 300,
            SimTime::from_nanos(i * 150),
        ))
        .unwrap();
    }
    w.finish().unwrap()
}

/// One mutation op: (kind, position seed, value seed, length seed). The
/// position is mapped into the record area (past the global header) so
/// the iterator constructor always succeeds and the fuzz exercises the
/// record path, not magic validation.
fn arb_mutation() -> impl Strategy<Value = (u8, u16, u8, u8)> {
    (0u8..4, any::<u16>(), any::<u8>(), 1u8..48)
}

fn mutate(mut bytes: Vec<u8>, ops: &[(u8, u16, u8, u8)]) -> Vec<u8> {
    for &(kind, pos, val, len) in ops {
        if bytes.len() <= 25 {
            break;
        }
        let body = bytes.len() - 24;
        let at = 24 + pos as usize % body;
        match kind {
            // Bit damage in place.
            0 => bytes[at] ^= val | 1,
            // Splice foreign bytes in.
            1 => {
                let junk = vec![val; len as usize];
                bytes.splice(at..at, junk);
            }
            // Tear a range out of the middle.
            2 => {
                let end = (at + len as usize).min(bytes.len());
                bytes.drain(at..end);
            }
            // Truncate the tail.
            _ => bytes.truncate(at),
        }
    }
    bytes
}

fn drain_lenient(bytes: &[u8]) -> (usize, u64, u64, u64) {
    let mut it = PcapRecords::new(bytes)
        .expect("global header untouched")
        .lenient();
    let mut n = 0usize;
    for r in &mut it {
        r.expect("lenient decode must never error on byte damage");
        n += 1;
    }
    (n, it.skipped_records(), it.skipped_bytes(), it.resyncs())
}

proptest! {
    #[test]
    fn lenient_decoder_survives_arbitrary_damage(
        records in 1u64..24,
        ops in proptest::collection::vec(arb_mutation(), 0..10),
    ) {
        let clean = clean_capture(records);
        let mutated = mutate(clean.clone(), &ops);
        let (n, skipped, skipped_bytes, _resyncs) = drain_lenient(&mutated);
        // Damage is bounded and accounted: you can't skip more bytes than
        // the file holds, and every surviving record really was decoded.
        prop_assert!(skipped_bytes <= mutated.len() as u64);
        // A record needs at least 16 header + 20 IPv4 bytes of stream, so
        // the yield is structurally bounded by the damaged file's size.
        prop_assert!(n <= mutated.len() / 36 + 1,
            "more records ({n}) than {} bytes can frame", mutated.len());
        let _ = skipped;

        if ops.is_empty() {
            // Oracle: untouched capture ⇒ lenient is exactly strict.
            let strict: Vec<_> = PcapRecords::new(clean.as_slice())
                .unwrap()
                .map(|r| r.unwrap())
                .collect();
            prop_assert_eq!(strict.len() as u64, records);
            prop_assert_eq!(n as u64, records);
            prop_assert_eq!((skipped, skipped_bytes), (0, 0));
        }
    }

    #[test]
    fn strict_and_lenient_agree_record_for_record_on_clean_captures(
        records in 1u64..40,
    ) {
        let bytes = clean_capture(records);
        let strict: Vec<_> = PcapRecords::new(bytes.as_slice())
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        let mut it = PcapRecords::new(bytes.as_slice()).unwrap().lenient();
        let lenient: Vec<_> = (&mut it).map(|r| r.unwrap()).collect();
        prop_assert_eq!(strict, lenient);
        prop_assert_eq!(it.resyncs(), 0);
    }

    #[test]
    fn lenient_replay_emits_monotone_times_under_damage(
        records in 1u64..24,
        ops in proptest::collection::vec(arb_mutation(), 0..10),
        window in prop_oneof![Just(0u64), Just(300), Just(5_000)],
    ) {
        let mutated = mutate(clean_capture(records), &ops);
        let mut src = PcapReplaySource::new(
            PcapRecords::new(mutated.as_slice()).expect("header untouched"),
            EntryMap::Fixed(0),
            window,
        )
        .lenient();
        let mut last = 0u64;
        let mut emitted = 0u64;
        while let Some(t) = src.peek() {
            let (_, p) = src.next_injection().expect("peek promised a record");
            prop_assert_eq!(p.created_at, t);
            prop_assert!(t.as_nanos() >= last,
                "time regression emitted: {} after {last}", t.as_nanos());
            last = t.as_nanos();
            emitted += 1;
        }
        prop_assert_eq!(emitted, src.emitted());
        prop_assert!(src.error().is_none(),
            "lenient replay must not surface decode errors: {:?}", src.error());
        prop_assert!(src.late_dropped() == 0,
            "lenient replay clamps, it never late-drops");
    }
}
