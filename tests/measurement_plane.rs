//! Integration: the RLI measurement plane assembled from its parts —
//! sender instrumentation through wire encoding to receiver estimation —
//! including clock-skew behaviour and reference-loss resilience.

use rlir_net::clock::{ClockModel, ClockPair};
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::wire::{decode_reference_packet, encode_reference_packet};
use rlir_net::FlowKey;
use rlir_rli::{Interpolator, ReceiverConfig, RliReceiver, RliSender, StaticPolicy};
use std::net::Ipv4Addr;

fn flow(i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, i),
        4000 + i as u16,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

fn ref_target() -> FlowKey {
    FlowKey::udp(
        Ipv4Addr::new(10, 0, 0, 250),
        40_000,
        Ipv4Addr::new(10, 9, 0, 250),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

/// Deliver a packet stream across a synthetic constant+ramp delay path and
/// check the receiver recovers per-flow means.
#[test]
fn sender_to_receiver_closed_loop() {
    let mut sender = RliSender::new(
        SenderId(1),
        ClockModel::perfect(),
        StaticPolicy::one_in(5),
        vec![ref_target()],
    );
    let mut receiver: RliReceiver = RliReceiver::new(ReceiverConfig::for_sender(SenderId(1)));

    // Path delay ramps linearly 10 µs → 20 µs over the run; linear
    // interpolation should track it almost perfectly.
    let n = 500u64;
    let delay_at = |t_ns: u64| 10_000.0 + 10_000.0 * (t_ns as f64 / 5_000_000.0);
    let mut events: Vec<(SimTime, Packet, Option<SimDuration>)> = Vec::new();
    for i in 0..n {
        let at = SimTime::from_nanos(i * 10_000); // 10 µs spacing
        let p = Packet::regular(i, flow((i % 3) as u8), 700, at);
        let d = SimDuration::from_nanos(delay_at(at.as_nanos()) as u64);
        events.push((at + d, p, Some(d)));
        for r in sender.observe(&p) {
            let d = SimDuration::from_nanos(delay_at(at.as_nanos()) as u64);
            events.push((at + d, *r, None));
        }
    }
    events.sort_by_key(|(at, p, _)| (*at, p.id));
    for (at, p, truth) in &events {
        receiver.on_packet(*at, p, *truth);
    }
    let report = receiver.finish();
    assert_eq!(report.counters.refs_accepted, sender.refs_emitted());
    assert!(report.counters.estimated > 400);
    for row in report.flows.report(10) {
        let err = row.mean_rel_err.expect("truth present");
        assert!(err < 0.01, "flow {} err {err}", row.flow);
    }
}

/// Losing reference packets must degrade gracefully: wider brackets, not
/// wrong estimates.
#[test]
fn reference_loss_degrades_gracefully() {
    let run = |drop_every: Option<u64>| {
        let mut sender = RliSender::new(
            SenderId(1),
            ClockModel::perfect(),
            StaticPolicy::one_in(5),
            vec![ref_target()],
        );
        let mut receiver: RliReceiver = RliReceiver::new(ReceiverConfig::for_sender(SenderId(1)));
        let mut refs_seen = 0u64;
        for i in 0..2000u64 {
            let at = SimTime::from_nanos(i * 5_000);
            let p = Packet::regular(i, flow(1), 700, at);
            // Sinusoidal path delay.
            let d = 15_000.0 + 5_000.0 * ((i as f64) / 50.0).sin();
            let d = SimDuration::from_nanos(d as u64);
            receiver.on_packet(at + d, &p, Some(d));
            for r in sender.observe(&p) {
                refs_seen += 1;
                if let Some(k) = drop_every {
                    if refs_seen.is_multiple_of(k) {
                        continue; // reference lost in transit
                    }
                }
                receiver.on_packet(at + d, r, None);
            }
        }
        let rep = receiver.finish();
        let row = &rep.flows.report(1)[0];
        row.mean_rel_err.unwrap()
    };
    let clean = run(None);
    let lossy = run(Some(3)); // every 3rd reference lost
    assert!(clean < 0.05, "clean error {clean}");
    assert!(lossy < 0.10, "lossy error {lossy} should still be small");
    assert!(
        lossy >= clean * 0.5,
        "sanity: loss should not *improve* much"
    );
}

/// Clock offset between sender and receiver biases estimates by exactly the
/// offset — visible in absolute error, invisible in interpolation shape.
#[test]
fn clock_skew_shifts_estimates_by_offset() {
    let offset_ns = 2_500i64;
    let clocks = ClockPair {
        sender: ClockModel::perfect(),
        receiver: ClockModel::with_offset(offset_ns),
    };
    let mut sender = RliSender::new(
        SenderId(1),
        clocks.sender,
        StaticPolicy::one_in(4),
        vec![ref_target()],
    );
    let mut receiver: RliReceiver = RliReceiver::new(ReceiverConfig {
        sender: SenderId(1),
        clock: clocks.receiver,
        interpolator: Interpolator::Linear,
        max_buffer: 1 << 16,
        record_estimates: false,
        epoch_ns: None,
    });
    let true_delay = SimDuration::from_micros(30);
    for i in 0..400u64 {
        let at = SimTime::from_nanos(1_000_000 + i * 8_000);
        let p = Packet::regular(i, flow(2), 700, at);
        receiver.on_packet(at + true_delay, &p, Some(true_delay));
        for r in sender.observe(&p) {
            receiver.on_packet(at + true_delay, r, None);
        }
    }
    let rep = receiver.finish();
    let row = &rep.flows.report(1)[0];
    let bias = row.est_mean - row.true_mean.unwrap();
    assert!(
        (bias - offset_ns as f64).abs() < 1.0,
        "bias {bias} should equal the clock offset {offset_ns}"
    );
}

/// The wire format carries exactly what the in-memory reference packet says:
/// encode at the sender, decode at the receiver, estimates unchanged.
#[test]
fn wire_encoding_is_transparent_to_the_receiver() {
    let mut sender = RliSender::new(
        SenderId(9),
        ClockModel::perfect(),
        StaticPolicy::one_in(1),
        vec![ref_target()],
    );
    let p = Packet::regular(1, flow(1), 700, SimTime::from_micros(5));
    let r = sender.observe(&p).last().copied().expect("1-in-1 fires");
    let info = *r.reference_info().unwrap();

    // Serialise to bytes and back, as a software receiver would.
    let bytes = encode_reference_packet(&r.flow, &info, 0);
    let decoded = decode_reference_packet(&bytes).unwrap();
    assert_eq!(decoded.info, info);

    // Feed both forms to two receivers: identical results.
    let mut rx_mem: RliReceiver = RliReceiver::new(ReceiverConfig::for_sender(SenderId(9)));
    let mut rx_wire: RliReceiver = RliReceiver::new(ReceiverConfig::for_sender(SenderId(9)));
    let arrival = SimTime::from_micros(35);
    rx_mem.on_reference(arrival, &info);
    rx_wire.on_reference(arrival, &decoded.info);
    assert_eq!(
        rx_mem.counters().refs_accepted,
        rx_wire.counters().refs_accepted
    );
}
