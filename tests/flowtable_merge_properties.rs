//! Property tests for [`FlowTable::merge`] as a lattice join (proptest).
//!
//! The plane's snapshot-query API (`MeasurementPlane::snapshot_epochs` /
//! `localize_now`) and the sharded sweep executor both fold per-tap /
//! per-shard tables with `merge`, so the fold must not care how the
//! observations were split into tables or in which order / association
//! the tables were folded back together. These properties pin that
//! across random shard splits:
//!
//! * counts and flow membership merge **exactly** (integer arithmetic);
//! * means / standard deviations merge up to floating-point rounding
//!   (Welford fusion is not bitwise associative) — compared within an
//!   epsilon against the unsharded sequential table;
//! * the quantile-conflict drop path: P² trackers are not mergeable, so
//!   a flow observed by two or more shards must come out of the fold
//!   with its quantile trackers dropped (`est_quantile: None`), while a
//!   flow owned by exactly one shard keeps that shard's tracker intact,
//!   bit-for-bit, no matter the fold order.

use proptest::prelude::*;
use rlir_net::{FlowKey, Protocol};
use rlir_rli::{FlowReport, FlowTable};
use std::collections::HashMap;
use std::net::Ipv4Addr;

const SHARDS: usize = 4;
const QUANTILE: f64 = 0.99;

/// A small deterministic flow pool so splits actually collide on flows.
fn flow(idx: u8) -> FlowKey {
    FlowKey {
        src: Ipv4Addr::new(10, 0, 0, idx),
        dst: Ipv4Addr::new(10, 1, 0, 255 - idx),
        proto: Protocol::Tcp,
        sport: 1000 + idx as u16,
        dport: 2000,
    }
}

/// One observation: (flow pool index, est delay ns, optional truth ns).
type Obs = (u8, u32, Option<u32>);

fn arb_observations() -> impl Strategy<Value = Vec<(Obs, usize)>> {
    proptest::collection::vec(
        (
            0u8..6,
            1u32..10_000_000,
            0u8..2,
            1u32..10_000_000,
            0usize..SHARDS,
        )
            .prop_map(|(idx, est, has_truth, truth, shard)| {
                ((idx, est, (has_truth == 1).then_some(truth)), shard)
            }),
        1..120,
    )
}

fn record_all(table: &mut FlowTable, obs: &[Obs]) {
    for &(idx, est, truth) in obs {
        table.record(flow(idx), est as f64, truth.map(|t| t as f64));
    }
}

/// Split observations by shard assignment and build one table per shard.
fn shard_tables(obs: &[(Obs, usize)]) -> Vec<FlowTable> {
    let mut tables: Vec<FlowTable> = (0..SHARDS)
        .map(|_| FlowTable::with_quantile(QUANTILE))
        .collect();
    for &(o, shard) in obs {
        record_all(&mut tables[shard], &[o]);
    }
    tables
}

fn rows_by_flow(table: &FlowTable) -> HashMap<FlowKey, FlowReport> {
    table.report(1).into_iter().map(|r| (r.flow, r)).collect()
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

fn close_opt(a: Option<f64>, b: Option<f64>) -> bool {
    match (a, b) {
        (Some(a), Some(b)) => close(a, b),
        (None, None) => true,
        _ => false,
    }
}

proptest! {
    /// Folding the shard tables back together in any association must
    /// agree with the unsharded sequential table: exactly on counts and
    /// flow membership, within floating-point epsilon on the moments.
    #[test]
    fn merge_is_order_invariant_and_matches_sequential(obs in arb_observations()) {
        let mut sequential = FlowTable::with_quantile(QUANTILE);
        let flat: Vec<Obs> = obs.iter().map(|&(o, _)| o).collect();
        record_all(&mut sequential, &flat);

        // Fold A: left fold in shard order — (((s0 ∪ s1) ∪ s2) ∪ s3).
        let mut fold_a = FlowTable::with_quantile(QUANTILE);
        for t in shard_tables(&obs) {
            fold_a.merge(t);
        }

        // Fold B: different order AND association — (s3 ∪ s1) ∪ (s2 ∪ s0).
        let mut tables = shard_tables(&obs);
        let (s0, s1, s2, s3) = (
            std::mem::take(&mut tables[0]),
            std::mem::take(&mut tables[1]),
            std::mem::take(&mut tables[2]),
            std::mem::take(&mut tables[3]),
        );
        let mut left = s3;
        left.merge(s1);
        let mut right = s2;
        right.merge(s0);
        let mut fold_b = left;
        fold_b.merge(right);

        for merged in [&fold_a, &fold_b] {
            prop_assert_eq!(merged.flow_count(), sequential.flow_count());
            prop_assert_eq!(merged.estimate_count(), sequential.estimate_count());
            let rows = rows_by_flow(merged);
            let seq_rows = rows_by_flow(&sequential);
            prop_assert_eq!(rows.len(), seq_rows.len());
            for (f, want) in &seq_rows {
                let got = rows.get(f).expect("merged table lost a flow");
                prop_assert_eq!(got.packets, want.packets);
                prop_assert!(close(got.est_mean, want.est_mean),
                             "est_mean {} vs {}", got.est_mean, want.est_mean);
                prop_assert!(close_opt(got.true_mean, want.true_mean));
                prop_assert!(close_opt(got.est_std, want.est_std));
                prop_assert!(close_opt(got.true_std, want.true_std));
            }
        }

        // And the two folds agree with each other the same way.
        let (a, b) = (rows_by_flow(&fold_a), rows_by_flow(&fold_b));
        for (f, ra) in &a {
            let rb = b.get(f).expect("folds disagree on flow membership");
            prop_assert_eq!(ra.packets, rb.packets);
            prop_assert!(close(ra.est_mean, rb.est_mean));
        }
    }

    /// The quantile-conflict drop path: a flow touched by ≥ 2 shards
    /// loses its P² trackers in the fold (not mergeable — documented
    /// drop), while a flow owned by exactly one shard keeps that shard's
    /// tracker state bit-for-bit, regardless of fold order.
    #[test]
    fn merge_drops_quantiles_exactly_on_conflict(obs in arb_observations()) {
        let mut owners: HashMap<u8, Vec<usize>> = HashMap::new();
        for &((idx, _, _), shard) in &obs {
            let o = owners.entry(idx).or_default();
            if !o.contains(&shard) {
                o.push(shard);
            }
        }

        let tables = shard_tables(&obs);
        let solo_rows: Vec<HashMap<FlowKey, FlowReport>> =
            tables.iter().map(rows_by_flow).collect();

        // Two fold orders, forward and reverse.
        let mut fwd = FlowTable::with_quantile(QUANTILE);
        for t in shard_tables(&obs) {
            fwd.merge(t);
        }
        let mut rev = FlowTable::with_quantile(QUANTILE);
        for t in tables.into_iter().rev() {
            rev.merge(t);
        }

        for merged in [&fwd, &rev] {
            let rows = rows_by_flow(merged);
            for (idx, shards) in &owners {
                let row = rows.get(&flow(*idx)).expect("observed flow must report");
                if shards.len() >= 2 {
                    prop_assert_eq!(row.est_quantile, None,
                                    "conflicting flow kept a quantile tracker");
                    prop_assert_eq!(row.true_quantile, None);
                } else {
                    // Sole owner: the tracker rides along untouched, so the
                    // merged estimate is exactly the owning shard's.
                    let own = &solo_rows[shards[0]][&flow(*idx)];
                    prop_assert_eq!(row.est_quantile, own.est_quantile);
                    prop_assert_eq!(row.true_quantile, own.true_quantile);
                }
            }
        }
    }
}
