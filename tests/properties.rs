//! Property-based tests over the core data structures and invariants,
//! spanning crates (proptest).

use proptest::prelude::*;
use rlir_net::packet::{Packet, ReferenceInfo, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::wire::{decode_reference_packet, encode_reference_packet};
use rlir_net::{FlowKey, HashAlgo, Ipv4Prefix, PrefixTrie, Protocol};
use rlir_rli::{DelaySample, Interpolator};
use rlir_sim::{FifoQueue, QueueConfig, Verdict};
use rlir_stats::{Ecdf, StreamingStats};
use rlir_topo::{FatTree, Role};
use std::net::Ipv4Addr;

fn arb_flow() -> impl Strategy<Value = FlowKey> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u8>(),
        any::<u16>(),
        any::<u16>(),
    )
        .prop_map(|(s, d, p, sp, dp)| FlowKey {
            src: Ipv4Addr::from(s),
            dst: Ipv4Addr::from(d),
            proto: Protocol::from_number(p),
            sport: sp,
            dport: dp,
        })
}

proptest! {
    // ---- rlir-net ------------------------------------------------------

    #[test]
    fn flow_key_bytes_round_trip(flow in arb_flow()) {
        let b = flow.to_bytes();
        prop_assert_eq!(FlowKey::from_bytes(&b), flow);
    }

    #[test]
    fn wire_reference_round_trip(flow in arb_flow(), sender in any::<u16>(),
                                 seq in any::<u32>(), ts in any::<u64>(), tos in any::<u8>()) {
        let info = ReferenceInfo {
            sender: SenderId(sender),
            seq,
            tx_timestamp: SimTime::from_nanos(ts),
        };
        let enc = encode_reference_packet(&flow, &info, tos);
        let dec = decode_reference_packet(&enc).expect("own encoding decodes");
        prop_assert_eq!(dec.info, info);
        prop_assert_eq!(dec.ip.tos, tos);
        prop_assert_eq!(dec.ip.src, flow.src);
        prop_assert_eq!(dec.ip.dst, flow.dst);
    }

    #[test]
    fn wire_detects_any_single_byte_corruption(flow in arb_flow(), byte in 0usize..48, flip in 1u8..=255) {
        let info = ReferenceInfo { sender: SenderId(1), seq: 7, tx_timestamp: SimTime::from_nanos(99) };
        let enc = encode_reference_packet(&flow, &info, 0);
        let mut bad = enc.to_vec();
        bad[byte] ^= flip;
        // Either the decode fails, or (checksum-colliding flips are possible
        // in principle) the decoded header differs from a clean decode. For
        // single-byte flips both checksums catch everything in practice.
        match decode_reference_packet(&bad) {
            Err(_) => {}
            Ok(dec) => {
                let clean = decode_reference_packet(&enc).unwrap();
                prop_assert_eq!(dec.info, clean.info);
            }
        }
    }

    #[test]
    fn trie_agrees_with_linear_scan(
        entries in proptest::collection::vec((any::<u32>(), 8u8..=32), 1..40),
        probes in proptest::collection::vec(any::<u32>(), 1..60)
    ) {
        let prefixes: Vec<(Ipv4Prefix, usize)> = entries
            .iter()
            .enumerate()
            .map(|(i, (a, l))| (Ipv4Prefix::new(Ipv4Addr::from(*a), *l).unwrap(), i))
            .collect();
        let mut trie = PrefixTrie::new();
        for (p, v) in &prefixes {
            trie.insert(*p, *v);
        }
        for probe in probes {
            let addr = Ipv4Addr::from(probe);
            // Reference: the longest matching prefix wins; among duplicates
            // the last-inserted value wins.
            let expected = prefixes
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, v)| (p.len(), *v))
                .map(|(_, v)| *v);
            prop_assert_eq!(trie.lookup(addr).copied(), expected, "addr {}", addr);
        }
    }

    #[test]
    fn prefix_nth_stays_inside(a in any::<u32>(), l in 0u8..=32, i in any::<u64>()) {
        let p = Ipv4Prefix::new(Ipv4Addr::from(a), l).unwrap();
        prop_assert!(p.contains(p.nth(i)));
    }

    // ---- rlir-stats ------------------------------------------------------

    #[test]
    fn welford_merge_equals_sequential(xs in proptest::collection::vec(-1e9f64..1e9, 2..200),
                                       split in 1usize..199) {
        let split = split.min(xs.len() - 1);
        let mut whole = StreamingStats::new();
        for &x in &xs { whole.push(x); }
        let (a, b) = xs.split_at(split);
        let mut sa = StreamingStats::new();
        let mut sb = StreamingStats::new();
        for &x in a { sa.push(x); }
        for &x in b { sb.push(x); }
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        prop_assert!((sa.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-6);
        let (va, vw) = (sa.variance().unwrap(), whole.variance().unwrap());
        prop_assert!((va - vw).abs() <= 1e-6 * vw.max(1.0), "{} vs {}", va, vw);
    }

    #[test]
    fn ecdf_is_monotone_and_normalised(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let e = Ecdf::new(xs);
        let s = e.series(64);
        for w in s.points.windows(2) {
            prop_assert!(w[1].0 >= w[0].0);
            prop_assert!(w[1].1 >= w[0].1);
        }
        prop_assert_eq!(s.points.last().unwrap().1, 1.0);
        // Quantiles are monotone too.
        let (q1, q5, q9) = (e.quantile(0.1).unwrap(), e.quantile(0.5).unwrap(), e.quantile(0.9).unwrap());
        prop_assert!(q1 <= q5 && q5 <= q9);
    }

    // ---- rlir-rli --------------------------------------------------------

    #[test]
    fn interpolation_bounded_by_endpoints(
        d1 in -1e6f64..1e6, d2 in -1e6f64..1e6,
        t1 in 0u64..1_000_000, span in 1u64..1_000_000, frac in 0.0f64..1.0
    ) {
        let left = DelaySample::new(SimTime::from_nanos(t1), d1);
        let right = DelaySample::new(SimTime::from_nanos(t1 + span), d2);
        let t = SimTime::from_nanos(t1 + (span as f64 * frac) as u64);
        let est = Interpolator::Linear.estimate(left, right, t);
        let (lo, hi) = (d1.min(d2), d1.max(d2));
        prop_assert!(est >= lo - 1e-9 && est <= hi + 1e-9, "est {} outside [{}, {}]", est, lo, hi);
    }

    // ---- rlir-sim --------------------------------------------------------

    #[test]
    fn fifo_queue_is_causal_and_ordered(
        arrivals in proptest::collection::vec((0u64..1_000_000, 40u32..1500), 1..200)
    ) {
        let mut sorted = arrivals;
        sorted.sort();
        let mut q = FifoQueue::new(QueueConfig {
            rate_bps: 1_000_000_000,
            capacity_bytes: 64 * 1024,
            processing_delay: SimDuration::from_nanos(100),
        });
        let flow = FlowKey::udp(Ipv4Addr::new(1, 1, 1, 1), 1, Ipv4Addr::new(2, 2, 2, 2), 2);
        let mut last_depart = SimTime::ZERO;
        for (i, (at, size)) in sorted.iter().enumerate() {
            let at = SimTime::from_nanos(*at);
            let p = Packet::regular(i as u64, flow, *size, at);
            match q.offer(at, &p) {
                Verdict::Departs(d) => {
                    // Causality: departure after arrival + processing + tx.
                    prop_assert!(d >= at + SimDuration::from_nanos(100));
                    // FIFO: departures never reorder.
                    prop_assert!(d >= last_depart);
                    last_depart = d;
                }
                Verdict::Dropped => {}
            }
        }
        // Conservation: every offered packet is either accepted or dropped,
        // and the byte counter only contains accepted packets.
        prop_assert_eq!(q.total_arrivals(), sorted.len() as u64);
        prop_assert!(q.total_drops() <= q.total_arrivals());
        let accepted_bytes: u64 = q.regular().bytes;
        let offered_bytes: u64 = sorted.iter().map(|(_, s)| *s as u64).sum();
        prop_assert!(accepted_bytes <= offered_bytes);
    }

    // ---- rlir-topo -------------------------------------------------------

    #[test]
    fn reverse_ecmp_matches_forward_for_random_flows(
        k in prop_oneof![Just(4usize), Just(6), Just(8)],
        seed in any::<u32>(),
        sport in 1024u16..60000,
        src_pod in 0usize..3, dst_pod_off in 1usize..3
    ) {
        let tree = FatTree::new(k, HashAlgo::Crc32 { seed });
        let src_pod = src_pod % k;
        let dst_pod = (src_pod + dst_pod_off) % k;
        prop_assume!(src_pod != dst_pod);
        let src_tor = tree.tor(src_pod, 0);
        let dst_tor = tree.tor(dst_pod, tree.half() - 1);
        let flow = FlowKey::tcp(
            tree.host_addr(src_tor, 1),
            sport,
            tree.host_addr(dst_tor, 0),
            443,
        );
        let path = tree.path(&flow).expect("routable");
        let rev = tree.reverse_ecmp(&flow).expect("reversible");
        prop_assert_eq!(rev.src_tor, path[0]);
        prop_assert_eq!(rev.agg, Some(path[1]));
        let fwd_core = path.iter().copied().find(|&n| matches!(tree.node(n).role, Role::Core { .. }));
        prop_assert_eq!(rev.core, fwd_core);
    }

    #[test]
    fn fat_tree_paths_are_valley_free(
        k in prop_oneof![Just(4usize), Just(6)],
        sport in 1024u16..60000, a in 0usize..6, b in 0usize..6
    ) {
        let tree = FatTree::new(k, HashAlgo::default());
        let tors: Vec<_> = tree.tors().collect();
        let (src, dst) = (tors[a % tors.len()], tors[b % tors.len()]);
        prop_assume!(src != dst);
        let flow = FlowKey::tcp(tree.host_addr(src, 0), sport, tree.host_addr(dst, 0), 80);
        let path = tree.path(&flow).expect("routable");
        // Valley-free: rank goes up then down exactly once (ToR=0, Agg=1,
        // Core=2).
        let rank = |n: usize| match tree.node(n).role {
            Role::Tor { .. } => 0i32,
            Role::Agg { .. } => 1,
            Role::Core { .. } => 2,
        };
        let ranks: Vec<i32> = path.iter().map(|&n| rank(n)).collect();
        let mut went_down = false;
        for w in ranks.windows(2) {
            prop_assert_eq!((w[1] - w[0]).abs(), 1, "non-adjacent tiers in {:?}", ranks);
            if w[1] < w[0] { went_down = true; }
            if w[1] > w[0] { prop_assert!(!went_down, "valley in path {:?}", ranks); }
        }
        prop_assert_eq!(*ranks.first().unwrap(), 0);
        prop_assert_eq!(*ranks.last().unwrap(), 0);
    }
}
