//! Integration: the RLIR architecture on the fat-tree — demultiplexing
//! correctness (A1/A3) and anomaly localization (A5).

use rlir::experiment::{run_fattree, CoreAnomaly, FatTreeExpConfig};
use rlir::localization::{localize, LocalizerConfig};
use rlir::CoreDemux;
use rlir_net::time::SimDuration;
use rlir_stats::Ecdf;
use rlir_topo::FatTree;

fn cfg(demux: CoreDemux) -> FatTreeExpConfig {
    let mut c = FatTreeExpConfig::paper(31, SimDuration::from_millis(20));
    c.demux = demux;
    c
}

fn median(xs: &[f64]) -> f64 {
    Ecdf::new(xs.iter().copied().filter(|x| x.is_finite()).collect())
        .median()
        .unwrap_or(f64::NAN)
}

#[test]
fn reverse_ecmp_and_marking_agree_packet_for_packet() {
    // A3: the two downstream strategies must produce identical associations
    // — identical workloads, identical counts.
    let rev = run_fattree(&cfg(CoreDemux::ReverseEcmp));
    let mark = run_fattree(&cfg(CoreDemux::Marking));
    assert_eq!(rev.demux_total, mark.demux_total);
    assert_eq!(rev.demux_correct, mark.demux_correct);
    assert_eq!(rev.demux_correct, rev.demux_total, "reverse ECMP exact");
    assert_eq!(mark.demux_correct, mark.demux_total, "marking exact");
    // And the resulting per-flow tables match in size.
    assert_eq!(
        rev.seg2_flows.flow_count(),
        mark.seg2_flows.flow_count(),
        "same flows estimated under both strategies"
    );
}

#[test]
fn naive_demux_collapses_under_heterogeneous_paths() {
    // A1: slow one core so equal-cost paths diverge; the naive receiver
    // (plain RLI across routers) must then be far worse than RLIR demux.
    let slow_core = Some(CoreAnomaly {
        core_ordinal: 0,
        extra_processing: SimDuration::from_micros(150),
    });
    let mut naive_cfg = cfg(CoreDemux::Naive);
    naive_cfg.anomaly = slow_core;
    let mut demux_cfg = cfg(CoreDemux::ReverseEcmp);
    demux_cfg.anomaly = slow_core;

    let naive = run_fattree(&naive_cfg);
    let demuxed = run_fattree(&demux_cfg);
    let (n, d) = (median(&naive.seg2_errors), median(&demuxed.seg2_errors));
    assert!(
        n > 2.0 * d,
        "naive median {n} should be far worse than demuxed {d}"
    );
    assert_eq!(naive.demux_unassociated, naive.demux_total);
}

#[test]
fn segment_truth_decomposes_end_to_end_delay() {
    let out = run_fattree(&cfg(CoreDemux::ReverseEcmp));
    // Every segment observation must have a sane positive true mean, and
    // segment-2 must include the destination ToR's queueing (larger than
    // bare link/processing latency).
    assert!(!out.segments.is_empty());
    for s in &out.segments {
        assert!(s.true_mean_ns > 0.0, "{}: non-positive true mean", s.name);
        assert!(
            s.true_mean_ns < 50_000_000.0,
            "{}: implausible true mean {}",
            s.name,
            s.true_mean_ns
        );
    }
}

#[test]
fn localizer_finds_injected_core_fault() {
    let mut c = cfg(CoreDemux::ReverseEcmp);
    let ordinal = 3;
    c.anomaly = Some(CoreAnomaly {
        core_ordinal: ordinal,
        extra_processing: SimDuration::from_micros(400),
    });
    let out = run_fattree(&c);
    let tree = FatTree::new(c.k, c.hash);
    let faulty = tree.node(tree.cores().nth(ordinal).unwrap()).name.clone();
    let findings = localize(&out.segments, &LocalizerConfig::default());
    assert!(!findings.is_empty(), "fault not detected");
    assert!(
        findings[0].name.starts_with(&faulty),
        "blamed {} instead of {}",
        findings[0].name,
        faulty
    );
}

#[test]
fn healthy_fabric_raises_no_alarms() {
    let out = run_fattree(&cfg(CoreDemux::ReverseEcmp));
    let findings = localize(&out.segments, &LocalizerConfig::default());
    assert!(
        findings.is_empty(),
        "false positives on a healthy fabric: {findings:?}"
    );
}

#[test]
fn fattree_run_is_deterministic() {
    let a = run_fattree(&cfg(CoreDemux::ReverseEcmp));
    let b = run_fattree(&cfg(CoreDemux::ReverseEcmp));
    assert_eq!(a.measured_delivered, b.measured_delivered);
    assert_eq!(a.demux_total, b.demux_total);
    assert_eq!(a.refs_emitted, b.refs_emitted);
    assert_eq!(a.seg1_errors, b.seg1_errors);
    assert_eq!(a.seg2_errors, b.seg2_errors);
}
