//! Tenant isolation: a flooding tenant cannot perturb a victim tenant's
//! estimates by a single bit.
//!
//! The plane's `pending_budget` is a hierarchy (PR 10): each tenant owns
//! a weighted share of the cap, a tenant under its share is always
//! admitted, and one at-or-over its share may only borrow headroom that
//! no other tenant has reserved. These tests drive two disjoint chains
//! through one shared plane — the victim tap in tenant 0, the flood tap
//! in tenant 1 — over processing-dominated queues, so the victim's packet
//! timing is identical in every run and any estimate difference can only
//! come from plane-side cross-talk.
//!
//! The single-tenant reduction (hierarchy == flat check bit-for-bit when
//! every tap is tenant 0) is pinned globally by `tests/rewiring_pins.rs`;
//! here it gets two direct checks: a sole tenant's weight is inert, and
//! with no budget at all the tenant dimension is pure accounting.

use rlir::experiment::{run_fattree, FatTreeExpConfig};
use rlir::plane::{
    DrainMode, MeasurementPlane, PlaneConfig, PlaneReport, StateLayout, TapPoint, TapSpec, TruthRef,
};
use rlir_net::clock::ClockModel;
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_rli::{PolicyKind, RliSender, StaticPolicy};
use rlir_sim::{run_network_with, Forwarder, Network, NodeId, Port, QueueConfig, RouteDecision};
use std::net::Ipv4Addr;

struct Chain;
impl Forwarder for Chain {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

/// Processing-dominated queues: per-hop delay is occupancy-independent.
fn qcfg() -> QueueConfig {
    QueueConfig {
        rate_bps: 8_000_000_000_000,
        capacity_bytes: 1 << 24,
        processing_delay: SimDuration::from_micros(10),
    }
}

fn flow(i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, 0, i),
        5000 + i as u16,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

fn ref_key(port: u16) -> FlowKey {
    FlowKey::udp(
        Ipv4Addr::new(10, 0, 0, 250),
        port,
        Ipv4Addr::new(10, 9, 0, 250),
        rlir_net::wire::RLI_UDP_PORT,
    )
}

/// Two disjoint chains (`a0→a1→host`, `b0→b1→host`) through one plane:
/// the victim tap (tenant 0, weight `w0`) at `a1`, the flood tap
/// (tenant 1, weight `w1`) at `b1`. `flood` regular packets are squeezed
/// into the victim's span at 10× its rate.
fn run(with_flood: bool, budget: Option<usize>, w0: u64, w1: u64) -> PlaneReport {
    let mut net = Network::default();
    let a0 = net.add_node("A0");
    let a1 = net.add_node("A1");
    let b0 = net.add_node("B0");
    let b1 = net.add_node("B1");
    let link = SimDuration::from_nanos(100);
    net.add_port(a0, Port::to_switch(qcfg(), a1, link));
    net.add_port(a1, Port::to_host(qcfg(), link));
    net.add_port(b0, Port::to_switch(qcfg(), b1, link));
    net.add_port(b1, Port::to_host(qcfg(), link));

    let mut injections: Vec<(NodeId, Packet)> = Vec::new();
    let mut sender = RliSender::new(
        SenderId(1),
        ClockModel::perfect(),
        StaticPolicy::one_in(10),
        vec![ref_key(40_000)],
    );
    // Victim workload: 2 µs spacing against a 10 µs reorder window keeps
    // its pending depth far under any share exercised here.
    for i in 0..2_000u64 {
        let p = Packet::regular(i, flow((i % 3) as u8), 700, SimTime::from_nanos(i * 2_000));
        for r in sender.observe(&p) {
            injections.push((a0, *r));
        }
        injections.push((a0, p));
    }
    if with_flood {
        for i in 0..20_000u64 {
            let p = Packet::regular(
                (1 << 32) | i,
                flow(200 + (i % 3) as u8),
                700,
                SimTime::from_nanos(i * 200),
            );
            injections.push((b0, p));
        }
    }

    let mut plane = MeasurementPlane::with_config(PlaneConfig {
        drain: DrainMode::Streaming {
            reorder_window: SimDuration::from_micros(10),
        },
        layout: StateLayout::SharedArena,
        epoch: Some(SimDuration::from_micros(500)),
        pending_budget: budget,
    });
    // Both tenants are declared in every run, so the share split never
    // changes; only the flood's traffic does.
    plane.set_tenant_weight(0, w0);
    plane.set_tenant_weight(1, w1);
    let mut victim = TapSpec::new("victim", TapPoint::NodeArrival(a1), SenderId(1));
    victim.truth = TruthRef::SinceInjection;
    victim.tenant = 0;
    plane.attach(victim);
    let mut flood = TapSpec::new("flood", TapPoint::NodeArrival(b1), SenderId(2));
    flood.tenant = 1;
    plane.attach(flood);

    run_network_with(net, &Chain, injections, &mut plane);
    plane.finish()
}

fn fold(h: u64, bits: u64) -> u64 {
    h.rotate_left(7) ^ bits.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Bit-exact digest of one tap's per-epoch series.
fn digest_tap_epochs(report: &PlaneReport, tap: usize) -> u64 {
    report.taps[tap].report.epochs.iter().fold(0u64, |h, e| {
        let h = fold(h, e.epoch);
        let h = fold(h, e.estimated);
        let h = fold(h, e.unestimated);
        fold(h, e.est_mean().unwrap_or(f64::NAN).to_bits())
    })
}

#[test]
fn flooding_tenant_cannot_move_a_victims_estimates() {
    let alone = run(false, Some(128), 1, 1);
    let flooded = run(true, Some(128), 1, 1);
    // The flood really overwhelmed its own share...
    let ft = &flooded.tenants[1];
    assert!(ft.shed > 0, "flood was never shed — not a storm");
    assert!(
        ft.peak_pending * 2 >= ft.share,
        "flood never reached its share"
    );
    // ...while the victim's series stayed byte-identical.
    assert!(
        !alone.taps[0].report.epochs.is_empty(),
        "victim produced no epochs"
    );
    assert_eq!(
        digest_tap_epochs(&alone, 0),
        digest_tap_epochs(&flooded, 0),
        "victim epochs moved under a neighbouring tenant's flood"
    );
    // And the victim tenant was never shed.
    assert_eq!(flooded.tenants[0].shed, 0, "victim shed under flood");
}

#[test]
fn per_tenant_books_balance_under_flood() {
    let report = run(true, Some(128), 3, 1);
    for t in &report.tenants {
        assert_eq!(
            t.offered,
            t.admitted + t.shed,
            "tenant {} books don't balance",
            t.id
        );
    }
    // Weighted shares: tenant 0 reserved 3/4 of the cap.
    assert_eq!(report.tenants[0].share, 96);
    assert_eq!(report.tenants[1].share, 32);
}

#[test]
fn sole_tenants_weight_is_inert() {
    // With every tap in one tenant its share is the whole cap no matter
    // the weight — the hierarchy must reduce to the flat check.
    let digest = |w: u64| {
        let mut plane = MeasurementPlane::with_config(PlaneConfig {
            drain: DrainMode::Streaming {
                reorder_window: SimDuration::from_micros(10),
            },
            layout: StateLayout::SharedArena,
            epoch: Some(SimDuration::from_micros(500)),
            pending_budget: Some(64),
        });
        plane.set_tenant_weight(0, w);
        let mut net = Network::default();
        let a0 = net.add_node("A0");
        let a1 = net.add_node("A1");
        let link = SimDuration::from_nanos(100);
        net.add_port(a0, Port::to_switch(qcfg(), a1, link));
        net.add_port(a1, Port::to_host(qcfg(), link));
        let mut injections: Vec<(NodeId, Packet)> = Vec::new();
        // Burst fast enough to overflow the 64-deep budget (100 ns
        // spacing against the 10 µs window ⇒ ~100 concurrent pending),
        // so the check itself is exercised, not just bypassed.
        for i in 0..4_000u64 {
            injections.push((
                a0,
                Packet::regular(i, flow((i % 3) as u8), 700, SimTime::from_nanos(i * 100)),
            ));
        }
        let mut tap = TapSpec::new("sole", TapPoint::NodeArrival(a1), SenderId(1));
        tap.truth = TruthRef::SinceInjection;
        plane.attach(tap);
        run_network_with(net, &Chain, injections, &mut plane);
        let report = plane.finish();
        assert!(report.taps[0].shed > 0, "budget never engaged");
        (digest_tap_epochs(&report, 0), report.taps[0].shed)
    };
    assert_eq!(
        digest(1),
        digest(7),
        "a sole tenant's weight changed output"
    );
}

#[test]
fn tenant_split_is_pure_accounting_without_a_budget() {
    // No `plane_budget` ⇒ no admission checks anywhere, so splitting the
    // fat-tree taps across two tenants must not move a single output bit.
    let digest = |split: Option<(u64, u64)>| {
        let mut cfg = FatTreeExpConfig::paper(11, SimDuration::from_millis(20));
        cfg.policy = PolicyKind::Static { n: 30 };
        cfg.tenant_split = split;
        let out = run_fattree(&cfg);
        let mut h = 0u64;
        h = fold(h, out.demux_total);
        h = fold(h, out.measured_delivered);
        h = fold(h, out.seg1_errors.len() as u64);
        h = out
            .seg1_errors
            .iter()
            .chain(&out.seg2_errors)
            .fold(h, |h, v| fold(h, v.to_bits()));
        h = fold(h, out.shed);
        h
    };
    assert_eq!(
        digest(None),
        digest(Some((3, 1))),
        "tenant split perturbed an unbudgeted plane"
    );
}
