//! Byte-identity of the pod-sharded engine (proptest).
//!
//! The sharded engine's whole contract is that shard count is a pure
//! performance knob: an N-shard run must produce **exactly** the stream a
//! 1-shard run produces — every [`HopEvent`] in the same order with the
//! same payload, every watermark, every delivery, and the same
//! stream-observable counters — across calm, tie-heavy and drop-heavy
//! regimes, under arbitrary mid-run [`FaultScript`]s, and when a
//! closed-loop detector truncates the run via [`StopFlag`]. These tests
//! drive a k=4 fat-tree partitioned by pod at 1, 2 and 4 shards (plus a
//! deliberately oversubscribed request) and compare order-sensitive
//! digests of everything the stream exposes.
//!
//! The per-shard capacity counters (`peak_live_slots`, `hop_allocations`)
//! are *documented* as shard-count-dependent and are excluded — see the
//! "Per-shard vs fused semantics" section on
//! [`rlir_sim::NetworkRunStats`].

use proptest::prelude::*;
use rlir::experiment::{run_fattree_faulted, FatTreeExpConfig};
use rlir::{build_network, DetectorConfig, FatTreeFabric};
use rlir_net::hash::HashAlgo;
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_sim::{
    run_network_sharded, FaultEvent, FaultKind, FaultScript, HopEvent, HopKind, HopSink,
    QueueConfig, RunOptions, ShardPlan, StopFlag, StreamedDelivery,
};
use rlir_topo::FatTree;

const K: usize = 4;

fn mix(h: u64, v: u64) -> u64 {
    let mut x = h ^ v.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^ (x >> 27)
}

/// Order-sensitive digest of the full observable stream: hop events
/// (kind, node, timestamp, packet id, marks, hop-record length),
/// watermarks, and deliveries.
#[derive(Default)]
struct Digest {
    h: u64,
    hops: u64,
    marks: u64,
    deliveries: u64,
}

impl Digest {
    fn fold(&mut self, v: u64) {
        self.h = mix(self.h, v);
    }
}

impl HopSink for Digest {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        self.hops += 1;
        let kind = match ev.kind {
            HopKind::Arrive => 1,
            HopKind::Enqueue { port } => 2 + ((port as u64) << 8),
            HopKind::Dequeue { port, arrived } => {
                (3 + ((port as u64) << 8)) ^ arrived.as_nanos().rotate_left(17)
            }
            HopKind::QueueDrop { port } => 4 + ((port as u64) << 8),
            HopKind::RouteDrop => 5,
            HopKind::Deliver => 6,
        };
        self.fold(kind);
        self.fold(ev.node as u64);
        self.fold(ev.at.as_nanos());
        self.fold(ev.packet.id.0);
        self.fold(ev.packet.mark as u64);
        self.fold(ev.hops.len() as u64);
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        self.marks += 1;
        self.fold(0xABCD ^ watermark.as_nanos());
    }
}

fn tor_flow(tree: &FatTree, src_tor: usize, dst_tor: usize, salt: u64) -> FlowKey {
    let s = tree.host_addr(src_tor, (salt % 4) as usize);
    let d = tree.host_addr(dst_tor, ((salt >> 2) % 4) as usize);
    FlowKey::tcp(s, 1000 + (salt % 50) as u16, d, 80)
}

/// Workload generator: `n` packets across all ToR pairs. `spacing_ns`
/// controls the regime — large spacing is calm, zero spacing makes every
/// injection collide in time (tie-heavy), and `burst` concentrates
/// packets so shallow queues overflow (drop-heavy).
fn workload(
    tree: &FatTree,
    n: u64,
    spacing_ns: u64,
    burst: u64,
    seed: u64,
) -> Vec<(usize, Packet)> {
    let tors: Vec<usize> = tree.tors().collect();
    (0..n)
        .map(|i| {
            let r = mix(seed, i);
            let src = tors[(r % tors.len() as u64) as usize];
            let dst = tors[((r >> 8) % tors.len() as u64) as usize];
            let at = (i / burst.max(1)) * spacing_ns;
            let p = Packet::regular(
                i,
                tor_flow(tree, src, dst, r >> 16),
                200 + (r % 1200) as u32,
                SimTime::from_nanos(at),
            );
            (src, p)
        })
        .collect()
}

/// Map raw proptest draws onto real fat-tree fault events. Ports are
/// folded into each node's real port count inside the engine-facing
/// script, so every draw is a legal fault.
fn fault_script(tree: &FatTree, raw: &[(u8, u64, u64, u64)]) -> FaultScript {
    let n_nodes = tree.len() as u64;
    let events: Vec<FaultEvent> = raw
        .iter()
        .map(|&(kind, node, at, extra)| {
            let node = (node % n_nodes) as usize;
            // Every fat-tree switch has at least `half` ports.
            let port = (extra % tree.half() as u64) as usize;
            let kind = match kind % 6 {
                0 => FaultKind::LinkDown { node, port },
                1 => FaultKind::LinkUp { node, port },
                2 => FaultKind::SlowSwitch {
                    node,
                    extra: SimDuration::from_nanos(1 + extra % 3_000),
                },
                3 => FaultKind::ClearSwitch { node },
                4 => FaultKind::LossBurstStart { node },
                _ => FaultKind::LossBurstEnd { node },
            };
            FaultEvent {
                at: SimTime::from_nanos(at),
                kind,
            }
        })
        .collect();
    FaultScript::new(events)
}

struct RunOutput {
    digest: u64,
    hops: u64,
    marks: u64,
    deliveries: u64,
    delivery_digest: u64,
    delivered: u64,
    events: u64,
    injected: u64,
    queue_drops: u64,
    route_drops: u64,
    fault_drops: u64,
    shards: usize,
    windows: u64,
}

/// One sharded run over the k=4 fat-tree; `stop_after` raises the
/// [`StopFlag`] from inside the delivery callback after that many
/// deliveries — the closed-loop detector's exact mechanism.
fn run_sharded(
    queue: QueueConfig,
    injections: &[(usize, Packet)],
    script: Option<&FaultScript>,
    shards: usize,
    stop_after: Option<u64>,
) -> RunOutput {
    let tree = FatTree::new(K, HashAlgo::default());
    let fabric = FatTreeFabric::new(&tree, true);
    let network = build_network(&tree, queue, SimDuration::from_micros(1), &[]);
    let plan = ShardPlan::new(tree.pod_partition());
    let mut sink = Digest::default();
    let stop = StopFlag::new();
    let mut dd = 0u64;
    let mut seen = 0u64;
    let out = run_network_sharded(
        network,
        &fabric,
        injections.iter().copied(),
        &mut sink,
        RunOptions {
            faults: script,
            stop: Some(&stop),
            ..RunOptions::default()
        },
        &plan,
        shards,
        |d: &StreamedDelivery<'_>| {
            seen += 1;
            dd = mix(dd, d.packet.id.0);
            dd = mix(dd, d.delivered_node as u64);
            dd = mix(dd, d.delivered_at.as_nanos());
            dd = mix(dd, d.hops.len() as u64);
            if stop_after.is_some_and(|n| seen >= n) {
                stop.request_stop();
            }
        },
    );
    sink.deliveries = seen;
    RunOutput {
        digest: sink.h,
        hops: sink.hops,
        marks: sink.marks,
        deliveries: sink.deliveries,
        delivery_digest: dd,
        delivered: out.stats.delivered,
        events: out.stats.events,
        injected: out.stats.injected,
        queue_drops: out.stats.queue_drops.iter().sum(),
        route_drops: out.stats.route_drops.iter().sum(),
        fault_drops: out.stats.fault_drops,
        shards: out.shards,
        windows: out.windows,
    }
}

/// Assert two runs are observation-for-observation identical.
fn assert_identical(a: &RunOutput, b: &RunOutput) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.digest, b.digest, "hop/watermark stream diverged");
    prop_assert_eq!(a.delivery_digest, b.delivery_digest, "deliveries diverged");
    prop_assert_eq!(a.hops, b.hops);
    prop_assert_eq!(a.marks, b.marks);
    prop_assert_eq!(a.deliveries, b.deliveries);
    prop_assert_eq!(a.delivered, b.delivered);
    prop_assert_eq!(a.events, b.events);
    prop_assert_eq!(a.injected, b.injected);
    prop_assert_eq!(a.queue_drops, b.queue_drops);
    prop_assert_eq!(a.route_drops, b.route_drops);
    prop_assert_eq!(a.fault_drops, b.fault_drops);
    Ok(())
}

/// Shallow queues for the drop-heavy regime.
fn shallow() -> QueueConfig {
    QueueConfig {
        capacity_bytes: 4_000,
        ..QueueConfig::oc192()
    }
}

proptest! {
    /// The tentpole identity: arbitrary regime (spacing × burst × queue
    /// depth) and an arbitrary fault script, run at 1, 2 and 4 shards plus
    /// an oversubscribed shard request — all byte-identical.
    #[test]
    fn n_shards_match_one_shard_under_faults(
        seed in 0u64..1_000,
        n in 40u64..160,
        spacing in prop_oneof![Just(0u64), Just(40u64), Just(700u64)],
        burst in 1u64..8,
        deep in any::<bool>(),
        raw_faults in proptest::collection::vec(
            (0u8..6, 0u64..64, 0u64..120_000, 1u64..4_000), 0..10),
    ) {
        let tree = FatTree::new(K, HashAlgo::default());
        let queue = if deep { QueueConfig::oc192() } else { shallow() };
        let injections = workload(&tree, n, spacing, burst, seed);
        let script = fault_script(&tree, &raw_faults);

        let one = run_sharded(queue, &injections, Some(&script), 1, None);
        prop_assert_eq!(one.shards, 1);
        prop_assert_eq!(one.injected, n);
        prop_assert!(one.hops > 0);
        // Conservation while we're here: every packet meets one fate.
        prop_assert_eq!(
            one.delivered + one.queue_drops + one.route_drops,
            n,
            "delivered {} + queue {} + route {} != injected {}",
            one.delivered, one.queue_drops, one.route_drops, n
        );
        prop_assert!(one.fault_drops <= one.route_drops);

        for shards in [2usize, 4] {
            let many = run_sharded(queue, &injections, Some(&script), shards, None);
            prop_assert_eq!(many.shards, shards, "k=4 pods+core gives 5 groups");
            assert_identical(&one, &many)?;
            // Same safe-horizon window schedule regardless of shard count.
            prop_assert_eq!(many.windows, one.windows);
        }

        // Requesting more shards than partition groups caps at the group
        // count (k pods + the core group) and stays identical too.
        let over = run_sharded(queue, &injections, Some(&script), 64, None);
        prop_assert_eq!(over.shards, K + 1);
        assert_identical(&one, &over)?;
    }

    /// Closed-loop truncation: a detector raising [`StopFlag`] mid-stream
    /// halts every shard at the same event-time — the truncated N-shard
    /// run is byte-identical to the truncated 1-shard run, and genuinely
    /// shorter than the untruncated one.
    #[test]
    fn stop_flag_truncates_all_shards_at_the_same_point(
        seed in 0u64..1_000,
        n in 60u64..140,
        stop_after in 5u64..40,
        raw_faults in proptest::collection::vec(
            (0u8..6, 0u64..64, 0u64..120_000, 1u64..4_000), 0..6),
    ) {
        let tree = FatTree::new(K, HashAlgo::default());
        let injections = workload(&tree, n, 40, 4, seed);
        let script = fault_script(&tree, &raw_faults);

        let full = run_sharded(shallow(), &injections, Some(&script), 1, None);
        let one = run_sharded(shallow(), &injections, Some(&script), 1, Some(stop_after));
        for shards in [2usize, 4] {
            let many = run_sharded(shallow(), &injections, Some(&script), shards, Some(stop_after));
            assert_identical(&one, &many)?;
        }
        if full.deliveries > stop_after {
            prop_assert!(
                one.events < full.events,
                "stop at delivery {} of {} did not truncate ({} vs {} events)",
                stop_after, full.deliveries, one.events, full.events
            );
            prop_assert_eq!(one.deliveries, stop_after);
        }
    }
}

/// Scenario-level identity: the full `faults`-style experiment — two
/// simulation phases, measurement plane, online detector — through
/// `FatTreeExpConfig::shards`, 1 vs 2 vs 4.
#[test]
fn faulted_experiment_is_shard_count_invariant() {
    let mut cfg = FatTreeExpConfig::paper(7, SimDuration::from_millis(3));
    cfg.epoch = Some(SimDuration::from_millis(1));
    let script = FaultScript::new(vec![FaultEvent {
        at: SimTime::from_nanos(400_000),
        kind: FaultKind::SlowSwitch {
            node: 0,
            extra: SimDuration::from_micros(120),
        },
    }]);
    let detector = DetectorConfig::default();

    cfg.shards = Some(1);
    let one = run_fattree_faulted(&cfg, Some(&script), Some(&detector));
    for shards in [2usize, 4] {
        cfg.shards = Some(shards);
        let many = run_fattree_faulted(&cfg, Some(&script), Some(&detector));
        assert_eq!(many.delivered, one.delivered, "shards={shards}");
        assert_eq!(many.events, one.events, "shards={shards}");
        assert_eq!(many.fault_drops, one.fault_drops, "shards={shards}");
        assert_eq!(
            many.detection.is_some(),
            one.detection.is_some(),
            "shards={shards}"
        );
        if let (Some(a), Some(b)) = (&one.detection, &many.detection) {
            assert_eq!(a.at, b.at, "detection time diverged at shards={shards}");
            assert_eq!(a.tap, b.tap, "detection site diverged at shards={shards}");
            assert_eq!(
                a.epoch, b.epoch,
                "detection epoch diverged at shards={shards}"
            );
        }
        assert_eq!(
            many.outcome.seg2_errors.len(),
            one.outcome.seg2_errors.len(),
            "shards={shards}"
        );
    }
}
