//! Integration: LDA and Multiflow running on real simulator output, and
//! their qualitative relationship to RLI (experiment A6's invariants).

use rlir_baselines::{estimate_all, Lda, LdaConfig};
use rlir_net::time::SimDuration;
use rlir_sim::{run_tandem, TandemConfig};
use rlir_stats::{relative_error, StreamingStats};
use rlir_trace::{generate, FlowMeter, FlowMeterConfig, TraceConfig};

#[test]
fn lda_measures_tandem_aggregate_latency() {
    let duration = SimDuration::from_millis(30);
    let trace = generate(&TraceConfig::paper_regular(11, duration));
    let result = run_tandem(
        &TandemConfig::paper(duration),
        trace.packets.iter().copied(),
        std::iter::empty(),
    );

    let cfg = LdaConfig::default();
    let (mut tx, mut rx) = (Lda::new(cfg), Lda::new(cfg));
    let mut truth = StreamingStats::new();
    for p in &trace.packets {
        tx.record(p.id.0, p.created_at);
    }
    for d in &result.deliveries {
        rx.record(d.packet.id.0, d.delivered_at);
        truth.push(d.true_delay().as_nanos() as f64);
    }
    let est = Lda::estimate(&tx, &rx).expect("no loss at 22% load");
    let err = relative_error(est.mean_delay_ns, truth.mean().unwrap());
    // No loss → every bucket usable → exact aggregate.
    assert!(err < 1e-9, "LDA aggregate error {err}");
    assert_eq!(est.usable_packets, result.deliveries.len() as u64);
}

#[test]
fn lda_survives_real_drop_tail_loss() {
    let duration = SimDuration::from_millis(30);
    let trace = generate(&TraceConfig::paper_regular(12, duration));
    let cross = generate(&TraceConfig::paper_cross(12, duration));
    let result = run_tandem(
        &TandemConfig::paper(duration),
        trace.packets.iter().copied(),
        cross.packets.iter().copied(), // full cross: ~93% load, some loss
    );
    let cfg = LdaConfig::default();
    let (mut tx, mut rx) = (Lda::new(cfg), Lda::new(cfg));
    let mut truth = StreamingStats::new();
    for p in &trace.packets {
        tx.record(p.id.0, p.created_at);
    }
    for d in &result.deliveries {
        if d.packet.is_regular() {
            rx.record(d.packet.id.0, d.delivered_at);
            truth.push(d.true_delay().as_nanos() as f64);
        }
    }
    let est = Lda::estimate(&tx, &rx).expect("banks must survive real loss");
    let err = relative_error(est.mean_delay_ns, truth.mean().unwrap());
    assert!(err < 0.10, "LDA aggregate error under loss: {err}");
    assert!(
        est.usable_buckets < est.total_buckets,
        "some buckets should have been corrupted by loss"
    );
}

#[test]
fn multiflow_is_per_flow_but_blind_to_midflow_congestion() {
    let duration = SimDuration::from_millis(30);
    let trace = generate(&TraceConfig::paper_regular(13, duration));
    let cross = generate(&TraceConfig::paper_cross(13, duration));
    let result = run_tandem(
        &TandemConfig::paper(duration),
        trace.packets.iter().copied(),
        cross.packets.iter().copied(),
    );

    let mut up = FlowMeter::new(FlowMeterConfig::default());
    let mut down = FlowMeter::new(FlowMeterConfig::default());
    let mut truth: std::collections::HashMap<_, StreamingStats> = Default::default();
    for p in &trace.packets {
        up.observe(p);
    }
    for d in &result.deliveries {
        if d.packet.is_regular() {
            down.observe_at(d.packet.flow, d.delivered_at, d.packet.size);
            truth
                .entry(d.packet.flow)
                .or_default()
                .push(d.true_delay().as_nanos() as f64);
        }
    }
    let ests = estimate_all(&up.finish(), &down.finish());
    assert!(ests.len() > 200, "expected many per-flow estimates");

    // Per-flow coverage exists (unlike LDA), and errors are finite for
    // matched flows; but for long flows the two-sample estimate is cruder
    // than for mice.
    let mut short_errs = Vec::new();
    let mut long_errs = Vec::new();
    for e in &ests {
        let Some(t) = truth.get(&e.flow).and_then(|s| s.mean()) else {
            continue;
        };
        let err = relative_error(e.mean_delay_ns, t);
        if !err.is_finite() {
            continue;
        }
        if e.packets <= 3 {
            short_errs.push(err);
        } else if e.packets >= 20 {
            long_errs.push(err);
        }
    }
    assert!(!short_errs.is_empty() && !long_errs.is_empty());
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&long_errs) > mean(&short_errs),
        "two-sample estimates should degrade for long flows: short {} vs long {}",
        mean(&short_errs),
        mean(&long_errs)
    );
}
