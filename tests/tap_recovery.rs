//! Tap crash/recovery: scripted `TapDown`/`TapUp` faults against the
//! fat-tree measurement plane.
//!
//! A downed tap discards its reorder-window slice and arena flow handles
//! and cold-resets its receiver; everything destroyed (plus every
//! crossing while down) is accounted in `lost_window_obs`, and after
//! `TapUp` estimation resumes at the next epoch boundary so the restarted
//! instance produces clean whole-epoch snapshots. These tests pin the
//! accounting, the cross-layout agreement (SharedArena vs PerTap see the
//! same crossings and lose the same windows), the sharded-engine digest
//! match under tap faults, and that an outage leaves no state behind
//! (peaks no worse than the fault-free run).

use rlir::experiment::{run_fattree_faulted, FatTreeExpConfig, FatTreeOutcome};
use rlir_net::time::{SimDuration, SimTime};
use rlir_rli::PolicyKind;
use rlir_sim::{FaultEvent, FaultKind, FaultScript};
use rlir_topo::FatTree;

fn cfg(seed: u64) -> FatTreeExpConfig {
    let mut cfg = FatTreeExpConfig::paper(seed, SimDuration::from_millis(30));
    cfg.policy = PolicyKind::Static { n: 30 };
    cfg.epoch = Some(SimDuration::from_millis(1));
    cfg
}

/// Crash the destination-ToR taps at 12 ms, recover at 20 ms.
fn outage_script(cfg: &FatTreeExpConfig) -> (FaultScript, usize) {
    let tree = FatTree::new(cfg.k, cfg.hash);
    let node = cfg.dst_tor(&tree);
    let script = FaultScript::new(vec![
        FaultEvent {
            at: SimTime::from_nanos(12_000_000),
            kind: FaultKind::TapDown { node },
        },
        FaultEvent {
            at: SimTime::from_nanos(20_000_000),
            kind: FaultKind::TapUp { node },
        },
    ]);
    (script, node)
}

fn fold(h: u64, bits: u64) -> u64 {
    h.rotate_left(7) ^ bits.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

fn digest(out: &FatTreeOutcome) -> u64 {
    let mut h = 0u64;
    h = fold(h, out.measured_delivered);
    h = fold(h, out.lost_window_obs);
    h = fold(h, out.recovered_epochs);
    h = fold(h, out.tap_outages);
    h = fold(h, out.seg1_errors.len() as u64);
    h = out
        .seg1_errors
        .iter()
        .chain(&out.seg2_errors)
        .fold(h, |h, v| fold(h, v.to_bits()));
    h
}

#[test]
fn outage_is_absorbed_and_accounted() {
    let c = cfg(29);
    let (script, _) = outage_script(&c);
    let clean = run_fattree_faulted(&c, None, None);
    let run = run_fattree_faulted(&c, Some(&script), None);

    assert_eq!(clean.outcome.tap_outages, 0);
    assert_eq!(clean.outcome.lost_window_obs, 0);
    assert!(run.outcome.tap_outages > 0, "no tap went down");
    assert!(
        run.outcome.lost_window_obs > 0,
        "an 8 ms outage at the busiest node lost nothing"
    );
    assert!(
        run.outcome.recovered_epochs > 0,
        "no epochs were produced after recovery"
    );
    // The crash frees state, it never leaks: the faulted run's plane
    // peaks can't exceed the fault-free run's (engine slots likewise).
    assert!(
        run.outcome.peak_pending_total <= clean.outcome.peak_pending_total,
        "outage grew the pending peak: {} > {}",
        run.outcome.peak_pending_total,
        clean.outcome.peak_pending_total
    );
    assert!(run.peak_live_slots <= clean.peak_live_slots);
    // Recovery is epoch-aligned: post-recovery epochs resume at-or-after
    // the TapUp boundary (20 ms / 1 ms epochs = epoch 20), so each downed
    // tap can recover at most the 10 whole epochs remaining in the run
    // plus the final partial epoch flushed at shutdown.
    assert!(
        run.outcome.recovered_epochs <= 11 * run.outcome.tap_outages,
        "more recovered epochs than the post-recovery span holds"
    );
}

#[test]
fn layouts_agree_on_what_an_outage_destroys() {
    let base = cfg(31);
    let (script, _) = outage_script(&base);
    let shared = run_fattree_faulted(&base, Some(&script), None);
    let mut per_tap = base.clone();
    per_tap.per_tap_plane = true;
    let split = run_fattree_faulted(&per_tap, Some(&script), None);

    // Different internal state layouts, same observable history: both see
    // the same crossings while up and lose the same windows while down.
    assert_eq!(
        shared.outcome.tap_outages, split.outcome.tap_outages,
        "layouts disagree on outage count"
    );
    assert_eq!(
        shared.outcome.lost_window_obs, split.outcome.lost_window_obs,
        "layouts disagree on what the outage destroyed"
    );
    assert_eq!(
        shared.outcome.recovered_epochs, split.outcome.recovered_epochs,
        "layouts disagree on recovery"
    );
    assert_eq!(digest(&shared.outcome), digest(&split.outcome));
}

#[test]
fn shard_count_is_inert_under_tap_faults() {
    // The sharded engine's contract is that shard count is a pure
    // performance knob against the 1-shard keyed baseline (same-time
    // ties are keyed differently from the sequential engine's push
    // order, so `shards: None` is a different — equally valid — tie
    // order on fat-tree workloads; see `crates/sim/src/shard.rs`).
    // Tap faults mutate plane state in-stream, so they must not break
    // that identity.
    let base = cfg(37);
    let (script, _) = outage_script(&base);
    let mut one = base.clone();
    one.shards = Some(1);
    let s1 = run_fattree_faulted(&one, Some(&script), None);
    for shards in [2usize, 4] {
        let mut many = base.clone();
        many.shards = Some(shards);
        let sn = run_fattree_faulted(&many, Some(&script), None);
        assert_eq!(
            digest(&s1.outcome),
            digest(&sn.outcome),
            "tap faults broke shard determinism at {shards} shards"
        );
        assert_eq!(s1.outcome.lost_window_obs, sn.outcome.lost_window_obs);
    }
    // The sequential engine orders same-time ties differently, but the
    // fault accounting is tie-independent: both engines agree on what an
    // outage destroyed and what recovery produced.
    let seq = run_fattree_faulted(&base, Some(&script), None);
    assert_eq!(seq.outcome.tap_outages, s1.outcome.tap_outages);
    assert_eq!(seq.outcome.lost_window_obs, s1.outcome.lost_window_obs);
    assert_eq!(seq.outcome.recovered_epochs, s1.outcome.recovered_epochs);
    assert_eq!(
        seq.outcome.measured_delivered,
        s1.outcome.measured_delivered
    );
}

#[test]
fn back_to_back_outages_accumulate() {
    let c = cfg(41);
    let tree = FatTree::new(c.k, c.hash);
    let node = c.dst_tor(&tree);
    let mk = |ms_down: u64, ms_up: u64| {
        [
            FaultEvent {
                at: SimTime::from_nanos(ms_down * 1_000_000),
                kind: FaultKind::TapDown { node },
            },
            FaultEvent {
                at: SimTime::from_nanos(ms_up * 1_000_000),
                kind: FaultKind::TapUp { node },
            },
        ]
    };
    let one = FaultScript::new(mk(8, 12).to_vec());
    let two = FaultScript::new(mk(8, 12).iter().chain(&mk(18, 22)).cloned().collect());
    let r1 = run_fattree_faulted(&c, Some(&one), None);
    let r2 = run_fattree_faulted(&c, Some(&two), None);
    assert_eq!(r2.outcome.tap_outages, 2 * r1.outcome.tap_outages);
    assert!(
        r2.outcome.lost_window_obs > r1.outcome.lost_window_obs,
        "a second outage lost nothing more"
    );
}
