//! Property tests for the hierarchical (per-tenant) pending budget.
//!
//! Randomized two-tenant storms through one shared plane, checking the
//! invariants the PR 10 isolation design rests on:
//!
//! * **Conservation** — per tenant, every offered regular observation is
//!   either admitted or shed: `offered == admitted + shed`.
//! * **Cap bound** — with regulars-only traffic (references are always
//!   admitted and exempt by contract), the plane-wide pending high-water
//!   mark never exceeds the configured cap.
//! * **Guaranteed share** — a tenant whose pending depth never reached
//!   its share is never shed, no matter what its neighbour offered.

use proptest::prelude::*;
use rlir::plane::{
    DrainMode, MeasurementPlane, PlaneConfig, PlaneReport, StateLayout, TapPoint, TapSpec, TruthRef,
};
use rlir_net::packet::{Packet, SenderId};
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_sim::{run_network_with, Forwarder, Network, NodeId, Port, QueueConfig, RouteDecision};
use std::net::Ipv4Addr;

struct Chain;
impl Forwarder for Chain {
    fn route(&self, _node: NodeId, _p: &Packet) -> RouteDecision {
        RouteDecision::Forward(0)
    }
}

fn qcfg() -> QueueConfig {
    QueueConfig {
        rate_bps: 8_000_000_000_000,
        capacity_bytes: 1 << 24,
        processing_delay: SimDuration::from_micros(10),
    }
}

fn flow(tenant: u8, i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, tenant, 0, i),
        5000 + i as u16,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

/// Two regulars-only workloads (counts + spacings drawn by proptest)
/// through two disjoint chains into one budgeted two-tenant plane.
fn storm(
    budget: usize,
    w: (u64, u64),
    n: (u64, u64),
    spacing_ns: (u64, u64),
    window_us: u64,
) -> PlaneReport {
    let mut net = Network::default();
    let a0 = net.add_node("A0");
    let a1 = net.add_node("A1");
    let b0 = net.add_node("B0");
    let b1 = net.add_node("B1");
    let link = SimDuration::from_nanos(100);
    net.add_port(a0, Port::to_switch(qcfg(), a1, link));
    net.add_port(a1, Port::to_host(qcfg(), link));
    net.add_port(b0, Port::to_switch(qcfg(), b1, link));
    net.add_port(b1, Port::to_host(qcfg(), link));

    let mut injections: Vec<(NodeId, Packet)> = Vec::new();
    for i in 0..n.0 {
        injections.push((
            a0,
            Packet::regular(
                i,
                flow(0, (i % 3) as u8),
                700,
                SimTime::from_nanos(i * spacing_ns.0),
            ),
        ));
    }
    for i in 0..n.1 {
        injections.push((
            b0,
            Packet::regular(
                (1 << 32) | i,
                flow(1, (i % 3) as u8),
                700,
                SimTime::from_nanos(i * spacing_ns.1),
            ),
        ));
    }

    let mut plane = MeasurementPlane::with_config(PlaneConfig {
        drain: DrainMode::Streaming {
            reorder_window: SimDuration::from_micros(window_us),
        },
        layout: StateLayout::SharedArena,
        epoch: Some(SimDuration::from_micros(500)),
        pending_budget: Some(budget),
    });
    plane.set_tenant_weight(0, w.0);
    plane.set_tenant_weight(1, w.1);
    let mut t0 = TapSpec::new("t0", TapPoint::NodeArrival(a1), SenderId(1));
    t0.truth = TruthRef::SinceInjection;
    t0.tenant = 0;
    plane.attach(t0);
    let mut t1 = TapSpec::new("t1", TapPoint::NodeArrival(b1), SenderId(2));
    t1.truth = TruthRef::SinceInjection;
    t1.tenant = 1;
    plane.attach(t1);

    run_network_with(net, &Chain, injections, &mut plane);
    plane.finish()
}

proptest! {
    #[test]
    fn tenant_books_always_balance(
        budget in 16usize..256,
        w in (1u64..8, 1u64..8),
        n in (100u64..2_000, 100u64..2_000),
        s in (150u64..4_000, 150u64..4_000),
        window_us in 1u64..40,
    ) {
        let (n0, n1) = n;
        let report = storm(budget, w, n, s, window_us);
        let mut offered_total = 0u64;
        for t in &report.tenants {
            prop_assert_eq!(
                t.offered, t.admitted + t.shed,
                "tenant {} books: offered {} admitted {} shed {}",
                t.id, t.offered, t.admitted, t.shed
            );
            offered_total += t.offered;
        }
        // Every regular that reached a tap was offered to its tenant.
        prop_assert_eq!(offered_total, n0 + n1);
    }

    #[test]
    fn cap_bounds_regulars_only_storms(
        budget in 16usize..192,
        w in (1u64..8, 1u64..8),
        n in 500u64..4_000,
        window_us in 25u64..50,
    ) {
        // Both tenants firing at 200 ns spacing against a wide window:
        // steady-state depth is ~5 obs/µs/tenant × window ≥ 250 total,
        // past any cap in range, so the budget always engages.
        let report = storm(budget, w, (n, n), (200, 200), window_us);
        prop_assert!(
            report.peak_pending_total <= budget,
            "peak pending {} exceeded the cap {}",
            report.peak_pending_total, budget
        );
        prop_assert!(
            report.tenants.iter().map(|t| t.shed).sum::<u64>() > 0,
            "storm never engaged the budget — not a storm"
        );
    }

    #[test]
    fn a_tenant_under_its_share_is_never_shed(
        budget in 64usize..256,
        w in (1u64..8, 1u64..8),
        flood in 2_000u64..10_000,
    ) {
        // Tenant 0 paced (2 µs spacing, 10 µs window ⇒ ~5 deep), tenant 1
        // flooding at 100 ns spacing.
        let report = storm(budget, w, (600, flood), (2_000, 100), 10);
        for t in &report.tenants {
            // Sheds happen only when a tenant's pending sits at-or-over
            // its share, so a strictly-under-share peak proves clean
            // admission throughout.
            if t.peak_pending < t.share {
                prop_assert_eq!(
                    t.shed, 0,
                    "tenant {} shed {} while never exceeding its share ({} <= {})",
                    t.id, t.shed, t.peak_pending, t.share
                );
            }
        }
    }
}
