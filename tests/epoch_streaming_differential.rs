//! Streaming-epoch plane vs buffered-sort oracle.
//!
//! The measurement plane's default drain is now **streaming**: a bounded
//! reorder window driven by the engine's event-time watermark feeds each
//! receiver online, in observation-time order, with O(window) peak memory.
//! The pre-streaming drain — buffer everything, sort once at `finish()` —
//! is retained behind `buffered_oracle` as the differential oracle.
//!
//! These tests pin the two paths **byte-identical** (every float compared
//! via `to_bits` inside the digests) on the two harnesses the ISSUE names,
//! including tie-heavy (synchronized bursts, equal-timestamp injections)
//! and drop-heavy (saturated bottleneck) regimes, and assert the memory
//! claim that justifies the refactor: peak buffered observations scale
//! with the reorder window, not with the run length.

use rlir::experiment::{
    run_fattree, run_two_hop, FatTreeExpConfig, FatTreeOutcome, TwoHopConfig, TwoHopOutcome,
};
use rlir_net::time::SimDuration;
use rlir_rli::{EpochSnapshot, FlowTable, PolicyKind};
use rlir_trace::BurstShape;

fn fold(h: u64, bits: u64) -> u64 {
    h.rotate_left(7) ^ bits.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Digest a per-flow table: every row's flow, counts and moments, bit for
/// bit.
fn digest_flows(mut h: u64, flows: &FlowTable) -> u64 {
    h = fold(h, flows.flow_count() as u64);
    h = fold(h, flows.estimate_count());
    for row in flows.report(1) {
        h = fold(h, row.packets);
        h = fold(h, row.est_mean.to_bits());
        h = fold(h, row.true_mean.unwrap_or(f64::NAN).to_bits());
        h = fold(h, row.est_std.unwrap_or(f64::NAN).to_bits());
        h = fold(h, row.true_std.unwrap_or(f64::NAN).to_bits());
    }
    h
}

/// Digest an epoch series: counters and moments per epoch.
fn digest_epochs(mut h: u64, epochs: &[EpochSnapshot]) -> u64 {
    h = fold(h, epochs.len() as u64);
    for e in epochs {
        h = fold(h, e.epoch);
        h = fold(h, e.regulars_seen);
        h = fold(h, e.estimated);
        h = fold(h, e.unestimated);
        h = fold(h, e.refs_accepted);
        h = fold(h, e.dropped_after_metering);
        h = fold(h, e.est_mean().unwrap_or(f64::NAN).to_bits());
        h = fold(h, e.true_mean().unwrap_or(f64::NAN).to_bits());
    }
    h
}

fn digest_fattree(out: &FatTreeOutcome) -> u64 {
    let mut h = 0u64;
    h = digest_flows(h, &out.seg1_flows);
    h = digest_flows(h, &out.seg2_flows);
    for errs in [&out.seg1_errors, &out.seg2_errors] {
        h = fold(h, errs.len() as u64);
        h = errs.iter().fold(h, |h, e| fold(h, e.to_bits()));
    }
    for s in &out.segments {
        h = s.name.bytes().fold(h, |h, b| fold(h, b as u64));
        h = fold(h, s.est_mean_ns.to_bits());
        h = fold(h, s.true_mean_ns.to_bits());
        h = fold(h, s.packets);
    }
    for (name, series) in &out.segment_epochs {
        h = name.bytes().fold(h, |h, b| fold(h, b as u64));
        h = digest_epochs(h, series);
    }
    h = digest_epochs(h, &out.seg1_epochs);
    h = digest_epochs(h, &out.seg2_epochs);
    h
}

fn digest_two_hop(out: &TwoHopOutcome) -> u64 {
    let mut h = 0u64;
    h = digest_flows(h, &out.flows);
    h = fold(h, out.receiver.estimated);
    h = fold(h, out.receiver.unestimated);
    h = fold(h, out.receiver.regulars_seen);
    h = fold(h, out.receiver.refs_accepted);
    h = fold(h, out.mean_errors.len() as u64);
    h = out.mean_errors.iter().fold(h, |h, e| fold(h, e.to_bits()));
    h = out.std_errors.iter().fold(h, |h, e| fold(h, e.to_bits()));
    digest_epochs(h, &out.epochs)
}

/// A drop- and tie-heavy fat-tree regime: synchronized bursts overload the
/// destination downlink (equal-timestamp packet clusters, queue drops).
fn stressed_fattree(seed: u64) -> FatTreeExpConfig {
    let mut cfg = FatTreeExpConfig::paper(seed, SimDuration::from_millis(20));
    cfg.policy = PolicyKind::Static { n: 30 };
    cfg.n_src_tors = 4;
    cfg.measured_load = 0.30;
    cfg.burst = Some(BurstShape {
        period: SimDuration::from_millis(5),
        duty: 0.2,
    });
    cfg
}

#[test]
fn fattree_streaming_matches_buffered_oracle() {
    let mut calm = FatTreeExpConfig::paper(11, SimDuration::from_millis(20));
    calm.policy = PolicyKind::Static { n: 30 };
    for (label, base) in [("calm", calm), ("burst+drops", stressed_fattree(17))] {
        let streaming = run_fattree(&base);
        let mut oracle_cfg = base.clone();
        oracle_cfg.buffered_oracle = true;
        let oracle = run_fattree(&oracle_cfg);
        assert_eq!(streaming.late, 0, "{label}: window must cover the lag");
        assert_eq!(
            digest_fattree(&streaming),
            digest_fattree(&oracle),
            "{label}: streaming drain drifted from the buffered-sort oracle"
        );
        assert!(
            streaming.peak_pending < oracle.peak_pending,
            "{label}: streaming peak {} not below oracle {}",
            streaming.peak_pending,
            oracle.peak_pending
        );
    }
}

#[test]
fn two_hop_streaming_matches_buffered_oracle() {
    // High utilization (tie-prone dense traffic) and an overloaded regime
    // (reference and regular drops at the bottleneck).
    for (label, target) in [("93%", 0.93), ("overload", 1.02)] {
        let mut cfg = TwoHopConfig::paper(7, SimDuration::from_millis(60));
        cfg.policy = PolicyKind::Static { n: 50 };
        cfg.cross = rlir::experiment::CrossSpec::Uniform {
            target_utilization: target,
        };
        let streaming = run_two_hop(&cfg);
        let mut oracle_cfg = cfg.clone();
        oracle_cfg.buffered_oracle = true;
        let oracle = run_two_hop(&oracle_cfg);
        assert_eq!(
            digest_two_hop(&streaming),
            digest_two_hop(&oracle),
            "{label}: streaming tap drifted from the buffered-sort oracle"
        );
        // The ordered streaming tap buffers nothing; the oracle buffers
        // the whole run.
        assert_eq!(streaming.peak_pending, 0, "{label}");
        assert!(
            oracle.peak_pending as u64 > streaming.regulars_offered / 2,
            "{label}: oracle must be O(run): {}",
            oracle.peak_pending
        );
    }
}

#[test]
fn streaming_peak_memory_tracks_the_window_not_the_run() {
    // Double the run length: the buffered-sort oracle's peak doubles
    // (O(run)); the streaming window's peak stays put (O(window)).
    let peak = |ms: u64, oracle: bool| {
        let mut cfg = stressed_fattree(23);
        cfg.duration = SimDuration::from_millis(ms);
        cfg.buffered_oracle = oracle;
        let out = run_fattree(&cfg);
        assert_eq!(out.late, 0);
        out.peak_pending
    };
    let (stream_short, stream_long) = (peak(15, false), peak(45, false));
    let (oracle_short, oracle_long) = (peak(15, true), peak(45, true));
    assert!(
        oracle_long as f64 > oracle_short as f64 * 2.0,
        "oracle peak must scale with run length: {oracle_short} → {oracle_long}"
    );
    assert!(
        (stream_long as f64) < stream_short as f64 * 1.5,
        "streaming peak must not scale with run length: {stream_short} → {stream_long}"
    );
    assert!(
        stream_long * 3 < oracle_long,
        "streaming peak {stream_long} must sit far below the oracle's {oracle_long}"
    );
}
