//! The arena-backed engine vs the retained moving oracle (PR 5).
//!
//! The slab engine pins in-flight packet state in a free-list arena and
//! moves 8-byte `Copy` handles through the scheduler; the pre-slab engine
//! — full packet + hop vector carried by value through every push/pop — is
//! retained behind [`EngineKind::MovingOracle`]. These tests hold the two
//! byte-identical where it matters:
//!
//! * deliveries (packet fields incl. marks, times, full hop records),
//!   drop counters and per-port queue counters, in calm, tie-heavy and
//!   drop-heavy regimes, under both schedulers;
//! * the complete `HopEvent` stream **including watermark callbacks** —
//!   the measurement plane's entire input surface;
//! * the streamed-delivery mode against the buffered mode (same deliveries
//!   as a time-sorted set, same drops, same queue counters);
//!
//! plus the properties the slab itself must uphold:
//!
//! * slot recycling under interleaved insert/push-hop/release never
//!   aliases two live packets (proptest against a mirror model);
//! * streamed-mode peak slot occupancy is O(max in-flight), not O(run) —
//!   the engine-side mirror of PR 4's peak-pending assertion.

use proptest::prelude::*;
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_sim::{
    run_network_engine, run_network_streamed_sched, EngineKind, Forwarder, Hop, HopEvent, HopKind,
    HopSink, Network, NetworkRun, NodeId, NullSink, PacketSlab, Port, PortId, QueueConfig,
    RouteDecision, SchedulerKind,
};
use std::net::Ipv4Addr;

fn qcfg(capacity_bytes: u64) -> QueueConfig {
    QueueConfig {
        rate_bps: 8_000_000_000, // 1 B/ns
        capacity_bytes,
        processing_delay: SimDuration::from_nanos(50),
    }
}

fn pkt(id: u64, at_ns: u64, dport: u16) -> Packet {
    Packet::regular(
        id,
        FlowKey::tcp(
            Ipv4Addr::new(10, 0, 0, (id % 250) as u8 + 1),
            1000 + (id % 7) as u16,
            Ipv4Addr::new(10, 1, 0, 1),
            dport,
        ),
        400 + (id % 5) as u32 * 300,
        SimTime::from_nanos(at_ns),
    )
}

/// A 4-switch diamond: 0 fans out to 1 or 2 by dport parity, both feed 3,
/// which delivers via a host port. Port 666 is unroutable at node 0, and a
/// marking hook stamps the first forwarding switch.
fn diamond(capacity_bytes: u64) -> Network {
    let mut net = Network::default();
    let s0 = net.add_node("s0");
    let s1 = net.add_node("s1");
    let s2 = net.add_node("s2");
    let s3 = net.add_node("s3");
    net.add_port(
        s0,
        Port::to_switch(qcfg(capacity_bytes), s1, SimDuration::from_nanos(100)),
    );
    net.add_port(
        s0,
        Port::to_switch(qcfg(capacity_bytes), s2, SimDuration::from_nanos(150)),
    );
    net.add_port(
        s1,
        Port::to_switch(qcfg(capacity_bytes), s3, SimDuration::from_nanos(100)),
    );
    net.add_port(
        s2,
        Port::to_switch(qcfg(capacity_bytes), s3, SimDuration::from_nanos(100)),
    );
    net.add_port(
        s3,
        Port::to_host(qcfg(capacity_bytes), SimDuration::from_nanos(50)),
    );
    net
}

struct DiamondForwarder;

impl Forwarder for DiamondForwarder {
    fn route(&self, node: NodeId, p: &Packet) -> RouteDecision {
        match node {
            0 if p.flow.dport == 666 => RouteDecision::Drop,
            0 => RouteDecision::Forward((p.flow.dport % 2) as usize),
            1 | 2 => RouteDecision::Forward(0),
            _ => RouteDecision::Forward(0), // node 3: host port
        }
    }

    fn on_forward(&self, node: NodeId, _port: PortId, p: &mut Packet) {
        if p.mark == 0 {
            p.mark = node as u8 + 1;
        }
    }
}

/// Everything a run produced, flattened for byte-for-byte comparison.
fn fingerprint(run: &NetworkRun) -> Vec<u64> {
    let mut v = Vec::new();
    for d in &run.deliveries {
        v.extend([
            d.packet.id.0,
            d.packet.size as u64,
            d.packet.mark as u64,
            d.packet.created_at.as_nanos(),
            d.injected_node as u64,
            d.injected_at.as_nanos(),
            d.delivered_node as u64,
            d.delivered_at.as_nanos(),
            d.hops.len() as u64,
        ]);
        for h in &d.hops {
            v.extend([
                h.node as u64,
                h.port as u64,
                h.arrived.as_nanos(),
                h.departed.as_nanos(),
            ]);
        }
    }
    v.extend(run.queue_drops.iter().copied());
    v.extend(run.route_drops.iter().copied());
    for node in &run.network.nodes {
        for port in &node.ports {
            for c in [
                port.queue.regular(),
                port.queue.cross(),
                port.queue.reference(),
            ] {
                v.extend([c.arrivals, c.drops, c.bytes]);
            }
        }
    }
    v
}

/// Record the full sink surface: every hop event (flattened) and every
/// watermark callback, in call order.
#[derive(Default)]
struct RecordingSink {
    log: Vec<u64>,
}

impl HopSink for RecordingSink {
    fn on_hop(&mut self, ev: &HopEvent<'_>) {
        let (kind, a, b) = match ev.kind {
            HopKind::Arrive => (1u64, 0, 0),
            HopKind::Enqueue { port } => (2, port as u64, 0),
            HopKind::Dequeue { port, arrived } => (3, port as u64, arrived.as_nanos()),
            HopKind::QueueDrop { port } => (4, port as u64, 0),
            HopKind::RouteDrop => (5, 0, 0),
            HopKind::Deliver => (6, 0, 0),
        };
        self.log.extend([
            kind,
            a,
            b,
            ev.node as u64,
            ev.at.as_nanos(),
            ev.packet.id.0,
            ev.packet.mark as u64,
            ev.injected_node as u64,
            ev.injected_at.as_nanos(),
            ev.hops.len() as u64,
        ]);
        if let Some(h) = ev.hops.last() {
            self.log
                .extend([h.node as u64, h.arrived.as_nanos(), h.departed.as_nanos()]);
        }
    }

    fn on_watermark(&mut self, watermark: SimTime) {
        self.log.extend([u64::MAX, watermark.as_nanos()]);
    }
}

/// One test regime: name, queue capacity, injections.
type Regime = (&'static str, u64, Vec<(NodeId, Packet)>);

/// The three regimes of the tentpole's pin: calm (spread injections),
/// tie-heavy (bursts sharing one timestamp), drop-heavy (overload against
/// a shallow buffer + unroutable flows).
fn regimes() -> Vec<Regime> {
    let calm: Vec<(NodeId, Packet)> = (0..400)
        .map(|i| (0usize, pkt(i, i * 2_000, 80 + (i % 3) as u16)))
        .collect();
    let ties: Vec<(NodeId, Packet)> = (0..400)
        .map(|i| (0usize, pkt(i, (i / 40) * 1_000, 80 + (i % 3) as u16)))
        .collect();
    let droppy: Vec<(NodeId, Packet)> = (0..600)
        .map(|i| {
            let dport = if i % 13 == 0 {
                666
            } else {
                80 + (i % 3) as u16
            };
            (0usize, pkt(i, (i / 20) * 900, dport))
        })
        .collect();
    vec![
        ("calm", 1 << 20, calm),
        ("ties", 1 << 20, ties),
        ("drops", 3_000, droppy),
    ]
}

#[test]
fn slab_and_oracle_runs_are_byte_identical() {
    for (name, cap, inj) in regimes() {
        for sched in [SchedulerKind::Calendar, SchedulerKind::Heap] {
            let slab = run_network_engine(
                diamond(cap),
                &DiamondForwarder,
                inj.clone(),
                &mut NullSink,
                sched,
                EngineKind::Slab,
            );
            let oracle = run_network_engine(
                diamond(cap),
                &DiamondForwarder,
                inj.clone(),
                &mut NullSink,
                sched,
                EngineKind::MovingOracle,
            );
            assert_eq!(
                fingerprint(&slab),
                fingerprint(&oracle),
                "{name}/{sched:?}: slab run diverged from the moving oracle"
            );
            if name == "drops" {
                assert!(
                    slab.queue_drops.iter().sum::<u64>() > 0,
                    "regime not droppy"
                );
                assert!(slab.route_drops[0] > 0, "regime not route-droppy");
            }
        }
    }
}

#[test]
fn hop_event_and_watermark_sequences_are_byte_identical() {
    for (name, cap, inj) in regimes() {
        let mut slab_sink = RecordingSink::default();
        let mut oracle_sink = RecordingSink::default();
        run_network_engine(
            diamond(cap),
            &DiamondForwarder,
            inj.clone(),
            &mut slab_sink,
            SchedulerKind::Calendar,
            EngineKind::Slab,
        );
        run_network_engine(
            diamond(cap),
            &DiamondForwarder,
            inj,
            &mut oracle_sink,
            SchedulerKind::Calendar,
            EngineKind::MovingOracle,
        );
        assert!(!slab_sink.log.is_empty());
        assert_eq!(
            slab_sink.log, oracle_sink.log,
            "{name}: hop-event/watermark sequence diverged"
        );
    }
}

#[test]
fn streamed_mode_matches_buffered_mode_in_every_regime() {
    for (name, cap, inj) in regimes() {
        let buffered = run_network_engine(
            diamond(cap),
            &DiamondForwarder,
            inj.clone(),
            &mut NullSink,
            SchedulerKind::Calendar,
            EngineKind::Slab,
        );
        let mut streamed: Vec<rlir_sim::NetDelivery> = Vec::new();
        let stats = run_network_streamed_sched(
            diamond(cap),
            &DiamondForwarder,
            inj,
            &mut NullSink,
            SchedulerKind::Calendar,
            |d| streamed.push(d.to_owned()),
        );
        streamed.sort_by_key(|d| (d.delivered_at, d.packet.id));
        let as_run = NetworkRun {
            deliveries: streamed,
            queue_drops: stats.queue_drops.clone(),
            route_drops: stats.route_drops.clone(),
            network: stats.network.clone(),
        };
        assert_eq!(
            fingerprint(&as_run),
            fingerprint(&buffered),
            "{name}: streamed deliveries diverged from the buffered mode"
        );
        assert_eq!(stats.delivered, buffered.deliveries.len() as u64, "{name}");
    }
}

#[test]
fn streamed_peak_slots_are_in_flight_bounded_not_run_bounded() {
    // The engine-side mirror of PR 4's peak-pending assertion: a run 100×
    // longer must not occupy more slots, because slots recycle at
    // deliver/drop. Injections spaced wider than the end-to-end residence
    // (~2.5 µs) keep only a handful of packets concurrently in flight.
    let peak_of = |packets: u64| {
        let inj: Vec<(NodeId, Packet)> = (0..packets)
            .map(|i| (0usize, pkt(i, i * 5_000, 80 + (i % 3) as u16)))
            .collect();
        let stats = run_network_streamed_sched(
            diamond(1 << 20),
            &DiamondForwarder,
            inj,
            &mut NullSink,
            SchedulerKind::Calendar,
            |_| {},
        );
        assert_eq!(stats.delivered, packets);
        (stats.peak_live_slots, stats.hop_allocations)
    };
    let (peak_short, allocs_short) = peak_of(100);
    let (peak_long, allocs_long) = peak_of(10_000);
    assert!(
        peak_long <= peak_short.max(4),
        "peak slots grew with run length: {peak_short} → {peak_long}"
    );
    assert!(
        peak_long < 100,
        "peak {peak_long} not bounded by concurrency"
    );
    // Hop storage is recycled with the slots: a 100× longer run performs
    // no more hop allocations than the concurrency bound implies.
    assert!(
        allocs_long <= allocs_short.max(4 * peak_long as u64),
        "hop allocations grew with run length: {allocs_short} → {allocs_long}"
    );
}

#[test]
fn streamed_overload_keeps_slots_bounded_under_drops() {
    // Sustained 2× overload against a shallow buffer: drops recycle slots
    // just like deliveries, so even at overload the peak tracks the
    // (buffer-bounded) in-flight population, not the injected count.
    let inj: Vec<(NodeId, Packet)> = (0..20_000u64)
        .map(|i| (0usize, pkt(i, i * 350, 80 + (i % 3) as u16)))
        .collect();
    let stats = run_network_streamed_sched(
        diamond(16_000),
        &DiamondForwarder,
        inj,
        &mut NullSink,
        SchedulerKind::Calendar,
        |_| {},
    );
    assert!(
        stats.queue_drops.iter().sum::<u64>() > 1_000,
        "not overloaded: {:?}",
        stats.queue_drops
    );
    assert!(
        stats.peak_live_slots < 2_000,
        "peak {} slots for 20000 injected under overload",
        stats.peak_live_slots
    );
}

// ---- slab free-list properties -----------------------------------------

#[derive(Debug, Clone)]
enum SlabOp {
    Insert(u64),
    /// Release the k-th live slot (mod live count).
    Release(usize),
    /// Push a hop onto the k-th live slot (mod live count).
    PushHop(usize),
}

fn arb_op() -> impl Strategy<Value = SlabOp> {
    (0u8..4, 0u64..1 << 40, 0usize..64).prop_map(|(tag, id, k)| match tag {
        0 | 1 => SlabOp::Insert(id), // insert-biased so sequences grow
        2 => SlabOp::Release(k),
        _ => SlabOp::PushHop(k),
    })
}

proptest! {
    /// Interleaved insert/release/push-hop against a mirror model: the
    /// slab must never hand out a slot that is still live (no aliasing),
    /// must preserve every live slot's packet and hop record verbatim, and
    /// its peak must equal the mirror's high-water mark.
    #[test]
    fn slot_recycling_never_aliases_live_packets(
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        let mut slab = PacketSlab::new();
        // Mirror: (slot, packet id, expected hop count), insertion-ordered.
        let mut live: Vec<(u32, u64, usize)> = Vec::new();
        let mut peak = 0usize;
        for op in ops {
            match op {
                SlabOp::Insert(id) => {
                    let slot = slab.insert(pkt(id, id % 9_999, 80), 0, SimTime::from_nanos(id));
                    prop_assert!(
                        !live.iter().any(|&(s, _, _)| s == slot),
                        "slot {slot} handed out while still live"
                    );
                    prop_assert!(slab.get(slot).hops().is_empty(), "recycled slot kept hops");
                    live.push((slot, id, 0));
                    peak = peak.max(live.len());
                }
                SlabOp::Release(k) => {
                    if live.is_empty() { continue; }
                    let (slot, _, _) = live.remove(k % live.len());
                    slab.release(slot);
                    prop_assert!(!slab.is_live(slot));
                }
                SlabOp::PushHop(k) => {
                    if live.is_empty() { continue; }
                    let idx = k % live.len();
                    let entry = &mut live[idx];
                    slab.push_hop(entry.0, Hop {
                        node: entry.2,
                        port: 0,
                        arrived: SimTime::from_nanos(entry.2 as u64),
                        departed: SimTime::from_nanos(entry.2 as u64 + 1),
                    });
                    entry.2 += 1;
                }
            }
            // Every live slot still holds exactly its own packet and hops.
            for &(slot, id, hops) in &live {
                prop_assert!(slab.is_live(slot));
                let st = slab.get(slot);
                prop_assert_eq!(st.packet.id.0, id, "live packet clobbered");
                prop_assert_eq!(st.hops().len(), hops, "live hop record clobbered");
                for (i, h) in st.hops().iter().enumerate() {
                    prop_assert_eq!(h.node, i, "hop record reordered");
                }
            }
            prop_assert_eq!(slab.live(), live.len());
        }
        prop_assert_eq!(slab.peak_live(), peak);
        prop_assert!(slab.capacity() <= peak.max(1), "slab grew beyond its peak");
    }

    /// Random tie-heavy workloads through a lossy diamond: the slab engine
    /// reproduces the moving oracle byte for byte under both schedulers.
    #[test]
    fn random_workloads_match_the_moving_oracle(
        times in proptest::collection::vec(0u64..200_000, 1..250),
        dports in proptest::collection::vec(0u16..5, 1..250),
    ) {
        let inj: Vec<(NodeId, Packet)> = times
            .iter()
            .zip(dports.iter().cycle())
            .enumerate()
            .map(|(i, (&t, &dp))| {
                let dport = if dp == 4 { 666 } else { 80 + dp };
                (0usize, pkt(i as u64, t, dport))
            })
            .collect();
        for sched in [SchedulerKind::Calendar, SchedulerKind::Heap] {
            let slab = run_network_engine(
                diamond(6_000),
                &DiamondForwarder,
                inj.clone(),
                &mut NullSink,
                sched,
                EngineKind::Slab,
            );
            let oracle = run_network_engine(
                diamond(6_000),
                &DiamondForwarder,
                inj.clone(),
                &mut NullSink,
                sched,
                EngineKind::MovingOracle,
            );
            prop_assert_eq!(fingerprint(&slab), fingerprint(&oracle));
        }
    }
}
