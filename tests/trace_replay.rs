//! Differential and pinning tests for the streaming trace-replay ingest:
//!
//! * **Streamed vs Vec ingest** — replaying a pcap through the pull-based
//!   [`rlir_trace::PcapReplaySource`] must be byte-identical to draining
//!   the same capture into a `Vec` and handing it to the old
//!   collect-then-sort entry: identical `HopEvent`/watermark sequences
//!   (via [`rlir_sim::StreamDigest`]) *and* identical delivery streams,
//!   across calm, tie-heavy and drop-heavy regimes.
//! * **Pcap edge cases** — same-timestamp records keep write order
//!   through a replay round trip, nanosecond precision survives the
//!   seconds-field rollover, and truncated files are an error, not a
//!   silent end.
//! * **Capture-pair ground truth** — the two-point identity-matching
//!   capture pair (RFC 1242: same packet at both points, keyed on
//!   5-tuple + IP ident) reproduces the simulator's own truth span
//!   *exactly* on a tandem, end to end from pcap bytes.

use proptest::prelude::*;
use rlir::{CapturePair, TapPoint};
use rlir_net::packet::Packet;
use rlir_net::time::{SimDuration, SimTime};
use rlir_net::FlowKey;
use rlir_sim::{
    run_network_streamed_source, Forwarder, InjectionSource, Network, NodeId, Port, QueueConfig,
    RouteDecision, RunOptions, SortedVecSource, StreamDigest,
};
use rlir_trace::{read_pcap, EntryMap, PcapError, PcapRecords, PcapReplaySource, PcapWriter};
use std::net::Ipv4Addr;

fn flow(i: u8) -> FlowKey {
    FlowKey::tcp(
        Ipv4Addr::new(10, 0, i % 8, 1),
        1000 + i as u16,
        Ipv4Addr::new(10, 9, 0, 1),
        80,
    )
}

/// Serialize packets as a nanosecond pcap held in memory.
fn capture(packets: &[Packet]) -> Vec<u8> {
    let mut w = PcapWriter::new(Vec::new()).expect("header");
    for p in packets {
        w.write(p).expect("record");
    }
    w.finish().expect("flush")
}

/// Build a time-sorted packet list from raw proptest tuples. Stable sort:
/// same-timestamp packets keep tuple order, which the pcap write order —
/// and therefore the replay source's seq tie-break — then preserves.
fn build_packets(raw: &[(u64, u32, u8)]) -> Vec<Packet> {
    let mut v: Vec<Packet> = raw
        .iter()
        .enumerate()
        .map(|(i, (at, size, f))| {
            Packet::regular(
                i as u64,
                flow(f % 8),
                40 + size % 1460,
                SimTime::from_nanos(*at),
            )
        })
        .collect();
    v.sort_by_key(|p| p.created_at);
    v
}

/// S0 --(rate/capacity queue, 1 µs link)--> S1, deliver at S1.
fn tandem(capacity_bytes: u64) -> Network {
    let mut net = Network::default();
    let a = net.add_node("S0");
    let b = net.add_node("S1");
    net.add_port(
        a,
        Port::to_switch(
            QueueConfig {
                rate_bps: 5_000_000_000,
                capacity_bytes,
                processing_delay: SimDuration::from_nanos(500),
            },
            b,
            SimDuration::from_micros(1),
        ),
    );
    net
}

struct Line;
impl Forwarder for Line {
    fn route(&self, node: NodeId, _p: &Packet) -> RouteDecision {
        if node == 1 {
            RouteDecision::Deliver
        } else {
            RouteDecision::Forward(0)
        }
    }
}

/// Digest of one full replay run: the entire hop-event + watermark stream
/// and the delivery stream, order-sensitive.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
struct RunFingerprint {
    events: u64,
    deliveries: u64,
    injected: u64,
    delivered: u64,
    dropped: u64,
}

fn fingerprint(source: impl InjectionSource, capacity_bytes: u64) -> RunFingerprint {
    let mut hops = StreamDigest::default();
    let mut deliveries = StreamDigest::default();
    let stats = run_network_streamed_source(
        tandem(capacity_bytes),
        &Line,
        source,
        &mut hops,
        RunOptions::default(),
        |d| {
            deliveries.fold(d.packet.id.0);
            deliveries.fold(d.delivered_at.as_nanos());
            deliveries.fold(d.injected_at.as_nanos());
            deliveries.fold(d.hops.len() as u64);
        },
    );
    RunFingerprint {
        events: hops.value(),
        deliveries: deliveries.value(),
        injected: stats.injected,
        delivered: stats.delivered,
        dropped: stats.queue_drops.iter().sum::<u64>() + stats.route_drops.iter().sum::<u64>(),
    }
}

/// The property under test: replaying `bytes` streamed off the reader is
/// byte-identical to materializing the same capture first.
fn assert_streamed_equals_vec(bytes: &[u8], capacity_bytes: u64) -> Result<(), TestCaseError> {
    let mk = || {
        PcapReplaySource::new(
            PcapRecords::new(bytes).expect("pcap header"),
            EntryMap::Fixed(0),
            0,
        )
    };

    let mut streamed_src = mk();
    let streamed = fingerprint(&mut streamed_src, capacity_bytes);
    prop_assert!(streamed_src.error().is_none());

    let mut vec_src = mk();
    let mut materialized = Vec::new();
    while vec_src.peek().is_some() {
        materialized.push(vec_src.next_injection().expect("peeked non-empty"));
    }
    let materialized_len = materialized.len();
    let vec = fingerprint(SortedVecSource::new(materialized), capacity_bytes);

    prop_assert_eq!(streamed, vec, "streamed ingest diverged from Vec ingest");
    prop_assert_eq!(streamed.injected, materialized_len as u64);
    // The streamed source never held more than a sliver of the capture:
    // this is the O(buffer) ingest claim, at property-test scale.
    prop_assert!(
        streamed_src.peak_buffered() <= 2,
        "sorted capture buffered {} records",
        streamed_src.peak_buffered()
    );
    Ok(())
}

proptest! {
    /// Calm regime: spread timestamps, roomy queue — everything delivers.
    #[test]
    fn streamed_equals_vec_calm(
        raw in proptest::collection::vec((0u64..2_000_000, 0u32..1460, any::<u8>()), 1..250)
    ) {
        let bytes = capture(&build_packets(&raw));
        assert_streamed_equals_vec(&bytes, 512 * 1024)?;
    }

    /// Tie-heavy regime: timestamps quantized onto a handful of values, so
    /// the seq/stable-sort tie-breaks do all the ordering work on both
    /// ingest paths.
    #[test]
    fn streamed_equals_vec_tie_heavy(
        slots in proptest::collection::vec(0u64..6, 1..250),
        sizes in proptest::collection::vec(0u32..1460, 1..250)
    ) {
        let raw: Vec<(u64, u32, u8)> = slots
            .iter()
            .zip(sizes.iter().cycle())
            .enumerate()
            .map(|(i, (s, sz))| (s * 10_000, *sz, (i % 5) as u8))
            .collect();
        let bytes = capture(&build_packets(&raw));
        assert_streamed_equals_vec(&bytes, 256 * 1024)?;
    }

    /// Drop-heavy regime: a tiny bottleneck queue forces enqueue drops, so
    /// the digests cover the drop events and counters too.
    #[test]
    fn streamed_equals_vec_drop_heavy(
        raw in proptest::collection::vec((0u64..60_000, 800u32..1460, any::<u8>()), 20..250)
    ) {
        let bytes = capture(&build_packets(&raw));
        assert_streamed_equals_vec(&bytes, 3_000)?;
    }

    /// End-to-end ground truth: replay a capture through the tandem with
    /// the two-point capture pair attached (A = injection arrival, B =
    /// delivery) and the identity-matched spans must equal the engine's
    /// own per-packet truth **exactly** — same count, same nanosecond sum.
    #[test]
    fn capture_pair_equals_simulator_truth_on_tandem(
        raw in proptest::collection::vec((0u64..500_000, 0u32..1460, any::<u8>()), 1..250),
        capacity in 3_000u64..200_000
    ) {
        let bytes = capture(&build_packets(&raw));
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).expect("pcap header"),
            EntryMap::Fixed(0),
            0,
        );
        let mut pair = CapturePair::new(TapPoint::NodeArrival(0), TapPoint::Delivery(1));
        let mut truth_sum = 0u64;
        let mut truth_n = 0u64;
        let stats = run_network_streamed_source(
            tandem(capacity),
            &Line,
            &mut src,
            &mut pair,
            RunOptions::default(),
            |d| {
                truth_sum += d.true_delay().as_nanos();
                truth_n += 1;
            },
        );
        let report = pair.finish();
        prop_assert_eq!(report.matched, stats.delivered);
        prop_assert_eq!(report.matched, truth_n);
        prop_assert_eq!(report.unmatched_b, 0);
        let (cap_n, cap_sum) = report
            .flows
            .iter()
            .fold((0u64, 0u64), |(n, s), (_, f)| (n + f.count, s + f.sum_ns));
        prop_assert_eq!(cap_n, truth_n);
        prop_assert_eq!(
            cap_sum, truth_sum,
            "wire-identity capture spans must equal engine truth to the nanosecond"
        );
    }
}

#[test]
fn same_timestamp_records_preserve_write_order() {
    // 40 records, all at t = 5 µs, distinguishable only by IP ident.
    let packets: Vec<Packet> = (0..40)
        .map(|i| Packet::regular(i, flow((i % 3) as u8), 900, SimTime::from_nanos(5_000)))
        .collect();
    let bytes = capture(&packets);

    // Decoded records come back in write order...
    let recs = read_pcap(&mut bytes.as_slice()).expect("decode");
    let idents: Vec<u16> = recs.iter().map(|r| r.ident).collect();
    assert_eq!(idents, (0u16..40).collect::<Vec<_>>());

    // ...and the replay source's (at, seq) tie-break keeps that order on
    // the way into the engine, with or without a reorder window.
    for reorder_ns in [0u64, 10_000] {
        let mut src = PcapReplaySource::new(
            PcapRecords::new(bytes.as_slice()).expect("header"),
            EntryMap::Fixed(0),
            reorder_ns,
        );
        let mut seen = Vec::new();
        while src.peek().is_some() {
            let (_, p) = src.next_injection().expect("peeked");
            seen.push((p.id.0 & 0xFFFF) as u16);
        }
        assert_eq!(seen, idents, "order broke with reorder_ns={reorder_ns}");
        assert_eq!(src.late_dropped(), 0);
    }
}

#[test]
fn nanosecond_precision_survives_second_rollover() {
    // Timestamps straddling the pcap sec/nsec field split: the sub-second
    // part rolls over at 1e9 and must reassemble to the exact nanosecond.
    let times = [
        0u64,
        999_999_998,
        999_999_999,
        1_000_000_000,
        1_000_000_001,
        2_999_999_999,
        3_000_000_000,
        u32::MAX as u64, // deep into the 4th second, odd nanos
    ];
    let packets: Vec<Packet> = times
        .iter()
        .enumerate()
        .map(|(i, t)| Packet::regular(i as u64, flow(1), 700, SimTime::from_nanos(*t)))
        .collect();
    let bytes = capture(&packets);
    let recs = read_pcap(&mut bytes.as_slice()).expect("decode");
    let back: Vec<u64> = recs.iter().map(|r| r.at.as_nanos()).collect();
    assert_eq!(back, times, "sec/nsec split lost nanosecond precision");

    // The consecutive-nanosecond neighbours around the rollover stay
    // strictly ordered through the replay source, too.
    let mut src = PcapReplaySource::new(
        PcapRecords::new(bytes.as_slice()).expect("header"),
        EntryMap::Fixed(0),
        0,
    );
    let mut prev = None;
    while src.peek().is_some() {
        let (_, p) = src.next_injection().expect("peeked");
        if let Some(prev) = prev {
            assert!(prev < p.created_at, "rollover broke ordering");
        }
        prev = Some(p.created_at);
    }
    assert_eq!(src.emitted(), times.len() as u64);
}

#[test]
fn truncated_capture_is_an_error_not_an_end() {
    let packets: Vec<Packet> = (0..8)
        .map(|i| Packet::regular(i, flow(2), 1000, SimTime::from_nanos(i * 100)))
        .collect();
    let full = capture(&packets);

    // Mid global header: the reader refuses to construct at all.
    assert!(PcapRecords::new(&full[..10]).is_err());

    // Mid record header and mid record body: iteration must surface
    // BadRecord, never silently stop at the tear.
    for cut in [full.len() - 3, full.len() - 20] {
        let torn = &full[..cut];
        let mut recs = PcapRecords::new(torn).expect("global header intact");
        let mut ok = 0usize;
        let err = loop {
            match recs.next() {
                Some(Ok(_)) => ok += 1,
                Some(Err(e)) => break e,
                None => panic!("truncated capture ended cleanly after {ok} records"),
            }
        };
        assert!(matches!(err, PcapError::BadRecord(_)), "got {err:?}");
        assert_eq!(ok, 7, "records before the tear must still decode");

        // The batch decoder agrees...
        assert!(read_pcap(&mut &torn[..]).is_err());

        // ...and the replay source plays everything before the tear, then
        // parks the error where the caller can see it.
        let mut src = PcapReplaySource::new(
            PcapRecords::new(torn).expect("header"),
            EntryMap::Fixed(0),
            0,
        );
        let mut n = 0;
        while src.peek().is_some() {
            src.next_injection().expect("peeked");
            n += 1;
        }
        assert_eq!(n, 7);
        assert!(matches!(src.error(), Some(PcapError::BadRecord(_))));
    }
}
