//! Property tests: the bucketed [`CalendarQueue`] drains events in an
//! identical `(time, sequence)` order to the original `BinaryHeap`
//! scheduler ([`HeapSchedule`]) — under random event mixes, dense
//! same-timestamp ties, event-driven interleaved push/pop, and degenerate
//! wheel geometries that force the overflow/rotation paths.

use proptest::prelude::*;
use rlir_net::time::SimTime;
use rlir_sim::{CalendarQueue, EventSchedule, HeapSchedule};

fn drain<S: EventSchedule<u32>>(s: &mut S) -> Vec<(u64, u32)> {
    let mut out = Vec::new();
    while let Some((at, v)) = s.pop() {
        out.push((at.as_nanos(), v));
    }
    out
}

fn fill<S: EventSchedule<u32>>(s: &mut S, times: &[u64]) {
    for (i, &t) in times.iter().enumerate() {
        s.push(SimTime::from_nanos(t), i as u32);
    }
}

proptest! {
    /// Random timestamps spanning far beyond one wheel rotation (~1 ms):
    /// exercises buckets, overflow heap and rotation jumps.
    #[test]
    fn calendar_matches_heap_on_random_mixes(
        times in proptest::collection::vec(0u64..50_000_000, 1..500),
    ) {
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarQueue::new();
        fill(&mut heap, &times);
        fill(&mut cal, &times);
        prop_assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    /// A tiny timestamp domain forces many exact ties: FIFO (push-order)
    /// tie-breaking must agree.
    #[test]
    fn calendar_matches_heap_under_dense_ties(
        times in proptest::collection::vec(0u64..40, 1..400),
    ) {
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarQueue::new();
        fill(&mut heap, &times);
        fill(&mut cal, &times);
        prop_assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    /// Event-driven shape: each pop may schedule children at the popped
    /// time plus a delta (never into the past), like packets traversing
    /// hops. Both schedules must agree pop for pop.
    #[test]
    fn calendar_matches_heap_interleaved(
        seeds in proptest::collection::vec(0u64..2_000_000, 1..60),
        deltas in proptest::collection::vec(0u64..3_000_000, 3..120),
    ) {
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarQueue::new();
        fill(&mut heap, &seeds);
        fill(&mut cal, &seeds);
        let mut next = seeds.len() as u32;
        let mut deltas = deltas.iter().cycle();
        let mut budget = 300usize;
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(&h, &c, "pop divergence");
            let Some((at, _)) = h else { break };
            if budget > 0 {
                budget -= 1;
                // Two children per pop, same push order on both sides.
                for _ in 0..2 {
                    let dt = *deltas.next().expect("cycled");
                    heap.push(SimTime::from_nanos(at.as_nanos() + dt), next);
                    cal.push(SimTime::from_nanos(at.as_nanos() + dt), next);
                    next += 1;
                }
            }
        }
        prop_assert!(heap.is_empty() && cal.is_empty());
    }

    /// Degenerate geometries (buckets as small as 2 ns, wheels as small as
    /// 2 buckets) push everything through the rotation machinery.
    #[test]
    fn small_geometries_stay_exact(
        times in proptest::collection::vec(0u64..10_000, 1..300),
        bucket_log2 in 1u32..8,
        wheel_log2 in 1u32..6,
    ) {
        let mut heap = HeapSchedule::new();
        let mut cal = CalendarQueue::with_geometry(bucket_log2, wheel_log2);
        fill(&mut heap, &times);
        fill(&mut cal, &times);
        prop_assert_eq!(drain(&mut heap), drain(&mut cal));
    }

    /// The adaptive constructor: whatever geometry `for_spacing` picks from
    /// a workload's (span, count) — dense microsecond traffic through
    /// sparse second-scale schedules, including mismatched hints — drains
    /// byte-identically to the heap oracle.
    #[test]
    fn adaptive_geometries_stay_exact(
        times in proptest::collection::vec(0u64..100_000_000, 2..400),
        // Deliberately allow hints that do NOT match the actual workload:
        // geometry may be suboptimal, never incorrect.
        span_hint in 0u64..10_000_000_000,
        count_hint in 0usize..100_000,
    ) {
        // Once from the true workload shape, once from the wild hint.
        let span = times.iter().max().unwrap() - times.iter().min().unwrap();
        for (s, c) in [(span, times.len()), (span_hint, count_hint)] {
            let mut heap = HeapSchedule::new();
            let mut cal = CalendarQueue::for_spacing(s, c);
            fill(&mut heap, &times);
            fill(&mut cal, &times);
            prop_assert_eq!(drain(&mut heap), drain(&mut cal));
        }
    }
}
